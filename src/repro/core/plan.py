"""Free Join plans: nodes of subatoms (Section 3.2).

A Free Join plan is a list of *nodes*; each node is a list of subatoms.  The
subatoms of each atom across all nodes must partition the atom's variables
(Definition 3.5), and a *valid* plan additionally requires that (a) no two
subatoms of one node share a relation and (b) every node has a *cover*: a
subatom containing all variables introduced by that node (Definition 3.7).

The plan also determines the GHT schema used in the build phase (Section 3.3):
the levels of each relation's trie are its subatoms' variable lists, in node
order.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import PlanError
from repro.query.atoms import Subatom
from repro.query.conjunctive import ConjunctiveQuery


class FreeJoinNode:
    """One node of a Free Join plan: an ordered list of subatoms.

    The order is meaningful: the first subatom listed is the default cover
    (the relation iterated over), the rest are probed in order.  Dynamic
    cover selection (Section 4.4) may iterate over a different cover at run
    time, but the probe order is preserved otherwise.
    """

    __slots__ = ("subatoms",)

    def __init__(self, subatoms: Sequence[Subatom]) -> None:
        if not subatoms:
            raise PlanError("a Free Join node needs at least one subatom")
        self.subatoms: List[Subatom] = list(subatoms)

    def variables(self) -> List[str]:
        """vs(node): all variables of this node's subatoms, in order."""
        seen: Dict[str, None] = {}
        for subatom in self.subatoms:
            for var in subatom.variables:
                seen.setdefault(var, None)
        return list(seen)

    def relations(self) -> List[str]:
        """Relation names appearing in this node, in order."""
        return [subatom.relation for subatom in self.subatoms]

    def has_relation(self, relation: str) -> bool:
        """Whether the node contains a subatom of the given relation."""
        return any(subatom.relation == relation for subatom in self.subatoms)

    def subatom_of(self, relation: str) -> Optional[Subatom]:
        """The subatom of the given relation, if present."""
        for subatom in self.subatoms:
            if subatom.relation == relation:
                return subatom
        return None

    def __len__(self) -> int:
        return len(self.subatoms)

    def __iter__(self):
        return iter(self.subatoms)

    def __getitem__(self, index: int) -> Subatom:
        return self.subatoms[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FreeJoinNode):
            return NotImplemented
        return self.subatoms == other.subatoms

    def __repr__(self) -> str:
        return "[" + ", ".join(repr(s) for s in self.subatoms) + "]"


class FreeJoinPlan:
    """A Free Join plan: an ordered list of :class:`FreeJoinNode`."""

    def __init__(self, nodes: Sequence[FreeJoinNode]) -> None:
        if not nodes:
            raise PlanError("a Free Join plan needs at least one node")
        self.nodes: List[FreeJoinNode] = [
            node if isinstance(node, FreeJoinNode) else FreeJoinNode(node)
            for node in nodes
        ]

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_lists(cls, nodes: Sequence[Sequence[Subatom]]) -> "FreeJoinPlan":
        """Build a plan from plain lists of subatoms."""
        return cls([FreeJoinNode(node) for node in nodes])

    # ------------------------------------------------------------------ #
    # Variable bookkeeping (Definition 3.5)
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self):
        return iter(self.nodes)

    def __getitem__(self, index: int) -> FreeJoinNode:
        return self.nodes[index]

    def node_variables(self, index: int) -> List[str]:
        """vs(node_index)."""
        return self.nodes[index].variables()

    def available_variables(self, index: int) -> Set[str]:
        """avs(node_index): variables bound by all preceding nodes."""
        available: Set[str] = set()
        for node in self.nodes[:index]:
            available.update(node.variables())
        return available

    def new_variables(self, index: int) -> Set[str]:
        """Variables introduced by the node: vs(node) - avs(node)."""
        return set(self.node_variables(index)) - self.available_variables(index)

    def covers(self, index: int) -> List[Subatom]:
        """All cover subatoms of a node (Definition 3.7)."""
        new_vars = self.new_variables(index)
        return [
            subatom
            for subatom in self.nodes[index]
            if new_vars <= set(subatom.variables)
        ]

    def all_variables(self) -> List[str]:
        """All variables bound anywhere in the plan, in binding order."""
        seen: Dict[str, None] = {}
        for node in self.nodes:
            for var in node.variables():
                seen.setdefault(var, None)
        return list(seen)

    def relations(self) -> List[str]:
        """All relation names appearing in the plan, in first-appearance order."""
        seen: Dict[str, None] = {}
        for node in self.nodes:
            for subatom in node:
                seen.setdefault(subatom.relation, None)
        return list(seen)

    def subatoms_of(self, relation: str) -> List[Subatom]:
        """All subatoms of a relation across the plan, in node order."""
        result = []
        for node in self.nodes:
            subatom = node.subatom_of(relation)
            if subatom is not None:
                result.append(subatom)
        return result

    def variable_order(self) -> List[str]:
        """The total variable order induced by the plan.

        This is the order Generic Join uses when asked to run "with the same
        variable order as Free Join" (Section 5.1): variables in the order the
        plan's nodes bind them.
        """
        return self.all_variables()

    # ------------------------------------------------------------------ #
    # Validation (Definitions 3.5 and 3.7)
    # ------------------------------------------------------------------ #

    def validate(self, query: ConjunctiveQuery) -> None:
        """Raise :class:`~repro.errors.PlanError` unless the plan is valid."""
        self._validate_partitioning(query)
        self._validate_nodes(query)

    def is_valid(self, query: ConjunctiveQuery) -> bool:
        """Whether the plan is valid for the query."""
        try:
            self.validate(query)
        except PlanError:
            return False
        return True

    def _validate_partitioning(self, query: ConjunctiveQuery) -> None:
        for atom in query.atoms:
            subatoms = self.subatoms_of(atom.name)
            if not subatoms:
                raise PlanError(f"plan never mentions atom {atom.name!r}")
            seen: Set[str] = set()
            for subatom in subatoms:
                unknown = set(subatom.variables) - set(atom.variables)
                if unknown:
                    raise PlanError(
                        f"subatom {subatom!r} uses variables {sorted(unknown)} "
                        f"that atom {atom.name!r} does not bind"
                    )
                overlap = seen & set(subatom.variables)
                if overlap:
                    raise PlanError(
                        f"variables {sorted(overlap)} of atom {atom.name!r} appear "
                        "in more than one subatom"
                    )
                seen.update(subatom.variables)
            missing = set(atom.variables) - seen
            if missing:
                raise PlanError(
                    f"variables {sorted(missing)} of atom {atom.name!r} are not "
                    "covered by any subatom"
                )

    def _validate_nodes(self, query: ConjunctiveQuery) -> None:
        for index, node in enumerate(self.nodes):
            relations = node.relations()
            if len(set(relations)) != len(relations):
                raise PlanError(
                    f"node {index} contains two subatoms of the same relation: {node!r}"
                )
            for relation in relations:
                if not query.has_atom(relation):
                    raise PlanError(
                        f"node {index} references unknown relation {relation!r}"
                    )
            if not self.covers(index):
                raise PlanError(
                    f"node {index} ({node!r}) has no cover: no subatom contains all "
                    f"of its new variables {sorted(self.new_variables(index))}"
                )

    # ------------------------------------------------------------------ #
    # Build-phase schemas (Section 3.3)
    # ------------------------------------------------------------------ #

    def ght_schemas(self, query: ConjunctiveQuery) -> Dict[str, List[Tuple[str, ...]]]:
        """Compute the GHT level schema of every atom.

        The levels of a relation's trie are its subatoms' variable tuples in
        node order.  Multiplicity of tuples that are only ever probed (never
        iterated) is recovered at execution time from the leaf vectors that
        forcing the last named level produces, so no explicit trailing empty
        level is added here.
        """
        schemas: Dict[str, List[Tuple[str, ...]]] = {}
        for atom in query.atoms:
            levels = [
                tuple(subatom.variables) for subatom in self.subatoms_of(atom.name)
            ]
            if not levels:
                raise PlanError(f"plan never mentions atom {atom.name!r}")
            schemas[atom.name] = levels
        return schemas

    # ------------------------------------------------------------------ #
    # Pretty printing
    # ------------------------------------------------------------------ #

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FreeJoinPlan):
            return NotImplemented
        return self.nodes == other.nodes

    def __repr__(self) -> str:
        return "[" + ", ".join(repr(node) for node in self.nodes) + "]"
