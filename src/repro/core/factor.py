"""Factoring (optimizing) Free Join plans (Section 4.1, Figure 10).

Factoring hoists probe subatoms ("lookups") from a node to the previous node
when all their variables are already available there.  Hoisting a lookup
filters out dangling tuples one loop level earlier, which the paper shows can
turn an :math:`O(n^2)` plan into an :math:`O(n)` one on skewed data (the
clover query example).

The hoisting is conservative, exactly as the paper prescribes: within a node,
lookups are considered in their original order and hoisting stops at the
first lookup that cannot move, so the lookup ordering chosen by the
cost-based optimizer is respected.  The cover of a node (its first subatom,
the one iterated over) is never hoisted.
"""

from __future__ import annotations

from typing import List, Set

from repro.core.plan import FreeJoinPlan
from repro.query.atoms import Subatom


def factor_plan(plan: FreeJoinPlan, max_passes: int = None) -> FreeJoinPlan:
    """Return a factored copy of ``plan``.

    Parameters
    ----------
    plan:
        The Free Join plan to optimize (typically the output of
        :func:`repro.core.convert.binary_to_free_join`).
    max_passes:
        Maximum number of full passes over the plan.  Hoisting a lookup into
        node ``i-1`` can enable further hoisting when node ``i-1`` is visited,
        and because the traversal is in reverse node order a single pass
        already propagates most moves; additional passes only help in rare
        chained cases.  ``None`` means "iterate to a fixed point".
    """
    nodes: List[List[Subatom]] = [list(node.subatoms) for node in plan.nodes]

    passes = 0
    while True:
        moved_any = _factor_pass(nodes)
        passes += 1
        if not moved_any:
            break
        if max_passes is not None and passes >= max_passes:
            break

    nonempty = [node for node in nodes if node]
    return FreeJoinPlan.from_lists(nonempty)


def _factor_pass(nodes: List[List[Subatom]]) -> bool:
    """One reverse pass of the factoring loop; returns whether anything moved."""
    moved_any = False
    for index in range(len(nodes) - 1, 0, -1):
        node = nodes[index]
        previous = nodes[index - 1]
        available = _available_variables(nodes, index)

        # Hoist a prefix of the lookups (everything after the cover).
        position = 1
        while position < len(node):
            subatom = node[position]
            can_move = (
                set(subatom.variables) <= available
                and not _contains_relation(previous, subatom.relation)
            )
            if not can_move:
                break
            node.pop(position)
            previous.append(subatom)
            moved_any = True
            # Do not advance ``position``: the next lookup shifted into it.
    return moved_any


def _available_variables(nodes: List[List[Subatom]], index: int) -> Set[str]:
    available: Set[str] = set()
    for node in nodes[:index]:
        for subatom in node:
            available.update(subatom.variables)
    return available


def _contains_relation(node: List[Subatom], relation: str) -> bool:
    return any(subatom.relation == relation for subatom in node)


def convert_and_factor(order, atoms) -> FreeJoinPlan:
    """Convert a left-deep order to a Free Join plan and factor it."""
    from repro.core.convert import binary_to_free_join

    return factor_plan(binary_to_free_join(order, atoms))
