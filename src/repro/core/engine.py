"""The end-to-end Free Join engine.

:class:`FreeJoinEngine` ties the pieces of the paper together: it takes a
conjunctive query plus an optimized binary plan (from the cost-based
optimizer), decomposes bushy plans into left-deep pipelines, converts each
pipeline to a Free Join plan (Figure 9), factors the plan (Figure 10), builds
COLT tries (Section 4.2), and executes with optional vectorization
(Section 4.3) and dynamic cover selection (Section 4.4).

Intermediate results of non-final pipelines are materialized "simplistically"
— all attributes stored in a flat vector of tuples — because the paper calls
out this materialization strategy explicitly and it is load-bearing for the
robustness results (Sections 5.2 and 5.4).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro import kernels
from repro.core.colt import TrieStrategy, build_tries
from repro.core.convert import binary_to_free_join
from repro.core.executor import FreeJoinExecutor
from repro.core.factor import factor_plan
from repro.core.plan import FreeJoinPlan
from repro.engine.output import CountSink, FactorizedSink, OutputSink, RowSink
from repro.engine.report import RunReport
from repro.errors import PlanError
from repro.optimizer.binary_plan import BinaryPlan, Pipeline
from repro.query.atoms import Atom
from repro.query.conjunctive import ConjunctiveQuery
from repro.storage.table import Table


@dataclass
class FreeJoinOptions:
    """Knobs of the Free Join engine, mirroring the paper's ablations.

    Attributes
    ----------
    trie_strategy:
        COLT (default), SLT, or the fully eager simple trie (Figure 17).
    batch_size:
        Vectorization batch size; 1 disables vectorization (Figure 18).  The
        paper's Rust implementation defaults to 1000 and gains about 2x from
        cache locality; under CPython the batching bookkeeping costs more
        than the locality it buys (there is no hardware cache effect at the
        interpreter level), so the default here is 1.  Figure 18's driver
        sweeps batch sizes explicitly either way.
    factor:
        Whether to run the plan-factoring optimization (Figure 10).  With
        factoring disabled the engine behaves identically to binary join.
    dynamic_cover:
        Whether to pick the cover with the fewest keys at run time
        (Section 4.4) instead of the first cover subatom.
    output:
        ``"rows"``, ``"count"``, or ``"factorized"`` (Figure 19).
    parallelism:
        Number of intra-query workers.  With ``parallelism > 1`` every
        pipeline's root cover iteration is partitioned across that many
        workers (see :mod:`repro.parallel.scheduler`).  ``None`` (the default)
        inherits the session's setting; an explicit 1 forces the serial
        path even on a parallel session.  Factorized output always runs
        serially.
    parallel_mode:
        ``"auto"`` (processes for large inputs, threads for small ones),
        ``"process"``, or ``"thread"``.
    scheduler:
        How parallel work is dispatched.  ``"steal"`` (the only scheduler)
        decomposes the root cover into fine-grained tasks executed by a
        persistent work-stealing pool over shared-memory columns
        (:mod:`repro.parallel.scheduler`).  ``None`` inherits the session's
        setting.  (The legacy static range sharder, ``"range"``, has been
        removed.)
    deadline:
        Optional :class:`repro.parallel.cancellation.DeadlineToken`.  The
        executor ticks it at every trie-expansion boundary and the steal
        scheduler pushes it into its workers (thread workers share the
        token, process workers probe a fork-inherited cancel cell), so an
        expired or cancelled query aborts mid-execution with
        ``DeadlineExceeded`` / ``QueryCancelled``.  Normally set per query
        by :meth:`repro.engine.session.Database.execute` (``timeout=``) or
        the async serving layer, not in long-lived option objects.
    """

    trie_strategy: TrieStrategy = TrieStrategy.COLT
    batch_size: int = 1
    factor: bool = True
    dynamic_cover: bool = True
    output: str = "rows"
    parallelism: Optional[int] = None
    parallel_mode: str = "auto"
    scheduler: Optional[str] = None
    deadline: Optional[object] = None

    def make_sink(self, variables: Sequence[str]) -> OutputSink:
        """Create the output sink matching the ``output`` mode."""
        if self.output == "rows":
            return RowSink(variables)
        if self.output == "count":
            return CountSink(variables)
        if self.output == "factorized":
            return FactorizedSink(variables)
        raise PlanError(f"unknown output mode {self.output!r}")


def resolve_scheduler(scheduler: Optional[str]) -> str:
    """Resolve a scheduler knob (``None`` means the default, ``"steal"``).

    ``"steal"`` is the only scheduler; the deprecated static range sharder
    (``"range"``) has been removed, and selecting it is an error.
    """
    resolved = scheduler or "steal"
    if resolved != "steal":
        raise PlanError(
            f"unknown scheduler {resolved!r}; the only scheduler is 'steal' "
            f"(the legacy 'range' sharder was removed)"
        )
    return resolved


def _run_parallel_pipeline(
    options: FreeJoinOptions,
    plan: FreeJoinPlan,
    output_variables,
    pipeline_atoms,
    schemas,
    sink_mode: str,
    shard_count: int,
    stream=None,
):
    """Dispatch one pipeline to the configured parallel scheduler.

    ``stream`` is an optional :class:`~repro.engine.streaming.StreamingSink`
    for the final pipeline: the steal scheduler forwards each task's rows to
    it as workers finish, so the consumer sees the first batch while the
    join is still running.  When the sink is a
    :class:`~repro.engine.streaming.StreamingAggregateSink`, steal tasks
    fold their rows into per-group partials worker-side and the parent
    merges them — grouped aggregates stream group deltas without the row
    bag ever crossing the worker boundary.
    """
    resolve_scheduler(options.scheduler)
    from repro.parallel.scheduler import run_freejoin_pipeline_steal

    return run_freejoin_pipeline_steal(
        plan,
        output_variables,
        pipeline_atoms,
        schemas,
        trie_strategy=options.trie_strategy,
        batch_size=options.batch_size,
        dynamic_cover=options.dynamic_cover,
        output=sink_mode,
        workers=shard_count,
        mode=options.parallel_mode,
        interrupt=options.deadline,
        stream=stream,
    )


class FreeJoinEngine:
    """Execute conjunctive queries with the Free Join algorithm."""

    name = "freejoin"

    def __init__(self, options: Optional[FreeJoinOptions] = None) -> None:
        self.options = options or FreeJoinOptions()

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def run(
        self,
        query: ConjunctiveQuery,
        binary_plan: BinaryPlan,
        options: Optional[FreeJoinOptions] = None,
        sink: Optional[OutputSink] = None,
    ) -> RunReport:
        """Execute ``query`` following ``binary_plan`` and return a report.

        ``sink`` overrides the final pipeline's output sink.  Passing an
        incremental sink (:class:`~repro.engine.streaming.StreamingSink`)
        turns the run into a streaming execution: rows reach the sink as the
        recursion produces them (and, on parallel runs, as steal workers
        complete tasks) instead of materializing first.  An aggregate sink
        (:class:`~repro.engine.streaming.StreamingAggregateSink`) folds the
        final pipeline's output into grouped partials — serially row by row,
        on parallel runs task by task worker-side — so factorized groups and
        join rows are aggregated without materializing the output.  The
        report's ``result`` is then the sink's placeholder, not the rows.
        """
        options = options or self.options
        pipelines = binary_plan.decompose()
        atoms: Dict[str, Atom] = {atom.name: atom for atom in query.atoms}

        build_seconds = 0.0
        join_seconds = 0.0
        other_seconds = 0.0
        plans_used: List[str] = []
        parallel_details: List[Dict[str, object]] = []
        final_result = None

        kernel_stats = kernels.new_stats()
        kernel_fallbacks: List[str] = []
        for pipeline in pipelines:
            started = time.perf_counter()
            plan = self._plan_for_pipeline(pipeline, atoms, options)
            plans_used.append(repr(plan))
            pipeline_atoms = {name: atoms[name] for name in pipeline.items}
            schemas = self._schemas(plan, pipeline_atoms)
            other_seconds += time.perf_counter() - started

            output_variables = self._pipeline_output_variables(
                pipeline, pipeline_atoms, query
            )
            sink_mode = options.output if pipeline.is_final else "rows"
            shard_count = options.parallelism or 1
            # Factorized output interleaves groups in ways shards cannot
            # reproduce; it always takes the serial path.  A caller-provided
            # final sink forces row mode for the parallel dispatch (workers
            # ship plain rows that the parent forwards incrementally).
            final_sink = sink if pipeline.is_final else None
            if final_sink is not None:
                sink_mode = "rows"
            if shard_count > 1 and sink_mode in ("rows", "count"):
                shard_run = _run_parallel_pipeline(
                    options,
                    plan,
                    output_variables,
                    pipeline_atoms,
                    schemas,
                    sink_mode,
                    shard_count,
                    stream=final_sink,
                )
                build_seconds += shard_run.build_seconds
                join_seconds += shard_run.join_seconds
                parallel_details.append(shard_run.details())
                kernels.merge_stats(kernel_stats, shard_run.extra.get("kernels_stats"))
                kernel_fallbacks.extend(shard_run.extra.get("kernels_fallbacks", ()))
                result = shard_run.result
            else:
                if final_sink is not None:
                    pipeline_sink = final_sink
                elif pipeline.is_final:
                    pipeline_sink = options.make_sink(output_variables)
                else:
                    pipeline_sink = RowSink(output_variables)

                # Factorized output (Fig. 19) is vectorized too: when the
                # final sink understands factorized batches the kernel
                # executor holds output-only probes out of the frontier and
                # emits shared prefixes plus flat factor columns — the
                # Cartesian product is never enumerated.
                if final_sink is not None:
                    factorize = pipeline.is_final and getattr(
                        final_sink, "accepts_factorized", False
                    )
                else:
                    factorize = (
                        pipeline.is_final and options.output == "factorized"
                    )
                driver_name = self._kernel_driver_name(plan, pipeline_atoms)
                probes = [
                    pipeline_atoms[name]
                    for name in plan.relations()
                    if name != driver_name
                ]
                program, reason = kernels.try_compile(
                    pipeline_atoms[driver_name],
                    probes,
                    output_variables,
                    compress=True,
                    stats=kernel_stats,
                )
                if program is not None:
                    started = time.perf_counter()
                    try:
                        kernels.execute_program(
                            program,
                            pipeline_sink,
                            interrupt=options.deadline,
                            stats=kernel_stats,
                            factorize=factorize,
                        )
                    except kernels.KernelFrontierExplosion as exc:
                        # Nothing reached the sink yet (guard invariant), so
                        # the trie executor can re-run the pipeline from
                        # scratch.
                        program, reason = None, str(exc)
                    join_seconds += time.perf_counter() - started
                if program is None:
                    kernel_fallbacks.append(reason)
                    started = time.perf_counter()
                    tries = build_tries(
                        pipeline_atoms, schemas, options.trie_strategy
                    )
                    build_seconds += time.perf_counter() - started

                    executor = FreeJoinExecutor(
                        plan,
                        output_variables,
                        pipeline_sink,
                        dynamic_cover=options.dynamic_cover,
                        batch_size=options.batch_size,
                        factorize=factorize,
                        interrupt=options.deadline,
                    )
                    started = time.perf_counter()
                    executor.run(tries)
                    join_seconds += time.perf_counter() - started
                result = pipeline_sink.result()

            if pipeline.is_final:
                final_result = result
            else:
                started = time.perf_counter()
                atoms[pipeline.output_name] = self._materialize(
                    pipeline.output_name, result
                )
                other_seconds += time.perf_counter() - started

        assert final_result is not None
        details: Dict[str, object] = {
            "plans": plans_used,
            "num_pipelines": len(pipelines),
            "options": options,
            "kernels": kernels.kernel_report(kernel_stats, kernel_fallbacks),
        }
        if parallel_details:
            details["parallel"] = parallel_details
        return RunReport(
            engine=self.name,
            result=final_result,
            build_seconds=build_seconds,
            join_seconds=join_seconds,
            other_seconds=other_seconds,
            details=details,
        )

    def run_with_plan(
        self,
        query: ConjunctiveQuery,
        plan: FreeJoinPlan,
        options: Optional[FreeJoinOptions] = None,
    ) -> RunReport:
        """Execute a hand-written Free Join plan over the whole query.

        This entry point is used by tests and by the Generic Join comparison:
        any valid Free Join plan (including Generic Join-shaped plans) can be
        executed directly, without going through a binary plan.
        """
        options = options or self.options
        plan.validate(query)
        atoms = {atom.name: atom for atom in query.atoms}
        schemas = self._schemas(plan, atoms)

        shard_count = options.parallelism or 1
        if shard_count > 1 and options.output in ("rows", "count"):
            shard_run = _run_parallel_pipeline(
                options,
                plan,
                query.output_variables,
                atoms,
                schemas,
                options.output,
                shard_count,
            )
            return RunReport(
                engine=self.name,
                result=shard_run.result,
                build_seconds=shard_run.build_seconds,
                join_seconds=shard_run.join_seconds,
                details={
                    "plans": [repr(plan)],
                    "options": options,
                    "stats": shard_run.stats,
                    "kernels": kernels.kernel_report(
                        shard_run.extra.get("kernels_stats"),
                        list(shard_run.extra.get("kernels_fallbacks", ())),
                    ),
                    "parallel": [shard_run.details()],
                },
            )

        started = time.perf_counter()
        tries = build_tries(atoms, schemas, options.trie_strategy)
        build_seconds = time.perf_counter() - started

        sink = options.make_sink(query.output_variables)
        executor = FreeJoinExecutor(
            plan,
            query.output_variables,
            sink,
            dynamic_cover=options.dynamic_cover,
            batch_size=options.batch_size,
            factorize=(options.output == "factorized"),
            interrupt=options.deadline,
        )
        started = time.perf_counter()
        executor.run(tries)
        join_seconds = time.perf_counter() - started

        return RunReport(
            engine=self.name,
            result=sink.result(),
            build_seconds=build_seconds,
            join_seconds=join_seconds,
            details={
                "plans": [repr(plan)],
                "options": options,
                "stats": executor.stats,
                # Hand-written plans exercise the trie executor directly;
                # the kernels never claim this entry point.
                "kernels": kernels.kernel_report(None, ["hand-written-plan"]),
            },
        )

    # ------------------------------------------------------------------ #
    # Pipeline helpers
    # ------------------------------------------------------------------ #

    @staticmethod
    def _kernel_driver_name(plan: FreeJoinPlan, pipeline_atoms: Dict[str, Atom]) -> str:
        """The batch driver relation: smallest cover of the root node.

        Mirrors dynamic cover selection (Section 4.4) — iterate the root
        cover with the fewest tuples, probe everything else.
        """
        covers = plan.covers(0)
        candidates = [s.relation for s in covers] or plan.relations()[:1]
        return min(candidates, key=lambda name: pipeline_atoms[name].size)

    def _plan_for_pipeline(
        self,
        pipeline: Pipeline,
        atoms: Dict[str, Atom],
        options: FreeJoinOptions,
    ) -> FreeJoinPlan:
        missing = [name for name in pipeline.items if name not in atoms]
        if missing:
            raise PlanError(
                f"pipeline {pipeline!r} references unmaterialized relations {missing}"
            )
        plan = binary_to_free_join(pipeline.items, atoms)
        if options.factor:
            plan = factor_plan(plan)
        return plan

    @staticmethod
    def _schemas(plan: FreeJoinPlan, atoms: Dict[str, Atom]):
        """GHT level schemas for the atoms of one pipeline."""
        schemas = {}
        for name in atoms:
            levels = [tuple(s.variables) for s in plan.subatoms_of(name)]
            if not levels:
                raise PlanError(f"plan {plan!r} never mentions relation {name!r}")
            schemas[name] = levels
        return schemas

    @staticmethod
    def _pipeline_output_variables(
        pipeline: Pipeline,
        pipeline_atoms: Dict[str, Atom],
        query: ConjunctiveQuery,
    ) -> List[str]:
        if pipeline.is_final:
            return list(query.output_variables)
        seen: Dict[str, None] = {}
        for name in pipeline.items:
            for var in pipeline_atoms[name].variables:
                seen.setdefault(var, None)
        return list(seen)

    @staticmethod
    def _materialize(name: str, result) -> Atom:
        """Materialize an intermediate result as a flat table-backed atom.

        This is the paper's "simple strategy": store tuples containing all
        attributes in a plain vector (Section 5.2).
        """
        variables = list(result.variables)
        table = Table.from_rows(name, variables, list(result.iter_rows()))
        return Atom(name, table, variables)
