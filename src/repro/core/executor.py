"""The Free Join execution algorithm (Section 3.3, Figure 7).

The executor walks the plan node by node.  At each node it picks a *cover*
subatom (statically the first cover, or dynamically the cover whose trie has
the fewest keys, Section 4.4), iterates over the cover's trie, probes the
other subatoms' tries with the values bound so far, and recurses into the
next node with the returned sub-tries.  Bag semantics are preserved by
multiplying the multiplicities carried by leaf vectors.

The recursion mutates a single shared binding environment and trie map and
restores the trie map on the way out; this keeps the per-tuple cost close to
that of the pipelined binary join executor, so measured differences between
the engines reflect the algorithms rather than allocation overhead.

Vectorized execution (Section 4.3, Figure 13) batches the cover iteration and
probes trie-by-trie across the whole batch; it lives in
:mod:`repro.core.vectorized` and is selected with ``batch_size > 1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ExecutionError, PlanError
from repro.core.ght import GHT
from repro.core.plan import FreeJoinPlan
from repro.core.vectorized import run_node_vectorized
from repro.engine.output import OutputSink
from repro.query.atoms import Subatom


@dataclass
class ExecutorStats:
    """Work counters collected during execution (used by tests and ablations)."""

    iterations: int = 0
    probes: int = 0
    failed_probes: int = 0
    outputs: int = 0
    batches: int = 0

    def merge(self, other: "ExecutorStats") -> "ExecutorStats":
        """Accumulate another executor's counters into this one.

        Used by the parallel subsystem to combine per-shard statistics; the
        counters partition the serial work, so ``sum(shard.outputs)`` over all
        shards equals the serial ``outputs`` (and likewise for the other
        counters under static cover selection).
        """
        self.iterations += other.iterations
        self.probes += other.probes
        self.failed_probes += other.failed_probes
        self.outputs += other.outputs
        self.batches += other.batches
        return self

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view, convenient for JSON reports and shard transport."""
        return {
            "iterations": self.iterations,
            "probes": self.probes,
            "failed_probes": self.failed_probes,
            "outputs": self.outputs,
            "batches": self.batches,
        }

    @classmethod
    def from_dict(cls, record: Dict[str, int]) -> "ExecutorStats":
        """Rebuild stats from :meth:`as_dict` output (crosses process pipes)."""
        return cls(**record)


@dataclass
class CoverPlan:
    """Pre-computed execution data for one (node, chosen cover) pair.

    Everything that does not depend on the run-time data is derived once at
    executor construction so the per-tuple inner loop does no list building.
    """

    relation: str
    variables: Tuple[str, ...]
    single: bool
    # (i, var) pairs for cover variables already bound by earlier nodes.
    bound_positions: Tuple[Tuple[int, str], ...]
    # (relation, variables, single) for every probed subatom, in probe order.
    probes: Tuple[Tuple[str, Tuple[str, ...], bool], ...]
    # For the vectorized path: per probe, how to assemble its key.  Each slot
    # is (True, index_into_cover_key) or (False, variable_name).
    probe_slots: Tuple[Tuple[Tuple[bool, object], ...], ...] = ()


@dataclass
class NodeInfo:
    """Pre-computed per-node information shared by both execution modes."""

    subatoms: List[Subatom]
    covers: List[int]  # indices into ``subatoms`` that are valid covers
    new_variables: frozenset
    available_variables: frozenset
    cover_plans: Dict[int, CoverPlan] = field(default_factory=dict)


class FreeJoinExecutor:
    """Executes a Free Join plan over a set of GHTs.

    Parameters
    ----------
    plan:
        A valid Free Join plan.
    output_variables:
        Variables to report to the sink, in output order.  Every output
        variable must be bound by the plan.
    sink:
        Where output rows (or factorized groups) go.
    dynamic_cover:
        Pick the cover with the fewest keys at run time (Section 4.4) instead
        of always iterating the first cover subatom.
    batch_size:
        Vectorization batch size; 1 disables vectorization.
    factorize:
        Emit factorized groups instead of enumerating the Cartesian product of
        independent trailing nodes (Section 4.4, Figure 19).  Only effective
        when the sink supports groups (all sinks do; :class:`RowSink` expands
        them, so correctness never depends on this flag).
    """

    def __init__(
        self,
        plan: FreeJoinPlan,
        output_variables: Sequence[str],
        sink: OutputSink,
        dynamic_cover: bool = True,
        batch_size: int = 1,
        factorize: bool = False,
        interrupt=None,
    ) -> None:
        self.plan = plan
        self.output_variables = tuple(output_variables)
        self.sink = sink
        self.dynamic_cover = dynamic_cover
        self.batch_size = max(1, int(batch_size))
        self.factorize = factorize
        # A repro.parallel.cancellation.DeadlineToken (or None).  ticked at
        # every cover-entry expansion, so a deadline or cancellation aborts
        # the join mid-flight instead of after it completes.
        self.interrupt = interrupt
        self.stats = ExecutorStats()

        plan_variables = set(plan.all_variables())
        missing = [v for v in self.output_variables if v not in plan_variables]
        if missing:
            raise PlanError(
                f"output variables {missing} are never bound by the plan {plan!r}"
            )

        self._nodes: List[NodeInfo] = []
        for index, node in enumerate(plan.nodes):
            new_vars = frozenset(plan.new_variables(index))
            available = frozenset(plan.available_variables(index))
            covers = [
                position
                for position, subatom in enumerate(node.subatoms)
                if new_vars <= set(subatom.variables)
            ]
            info = NodeInfo(list(node.subatoms), covers, new_vars, available)
            for position in covers:
                info.cover_plans[position] = self._build_cover_plan(info, position)
            self._nodes.append(info)

        self._factorizable_from = self._compute_factorizable_suffix()
        # Set by run_task for sub-root tasks; consumed once, at depth 1.
        self._sub_shard: Optional[Tuple[int, int]] = None
        # depth -> cover position, set by run_task: sliced covers must not be
        # re-chosen dynamically mid-task (COLT forcing changes key_count(),
        # so a dynamic re-choice could iterate a *different* relation than
        # the one the scheduler partitioned, dropping or repeating outputs).
        self._pinned_covers: Dict[int, int] = {}

    @staticmethod
    def _build_cover_plan(info: "NodeInfo", cover_position: int) -> CoverPlan:
        cover = info.subatoms[cover_position]
        probes = tuple(
            (subatom.relation, subatom.variables, len(subatom.variables) == 1)
            for index, subatom in enumerate(info.subatoms)
            if index != cover_position
        )
        bound_positions = tuple(
            (i, var)
            for i, var in enumerate(cover.variables)
            if var in info.available_variables
        )
        probe_slots = tuple(
            tuple(
                (True, cover.variables.index(var))
                if var in cover.variables
                else (False, var)
                for var in variables
            )
            for _relation, variables, _single in probes
        )
        return CoverPlan(
            relation=cover.relation,
            variables=cover.variables,
            single=len(cover.variables) == 1,
            bound_positions=bound_positions,
            probes=probes,
            probe_slots=probe_slots,
        )

    # ------------------------------------------------------------------ #
    # Entry point
    # ------------------------------------------------------------------ #

    def run(self, tries: Dict[str, GHT]) -> None:
        """Execute the plan over ``tries`` (one trie per relation)."""
        for relation in self.plan.relations():
            if relation not in tries:
                raise ExecutionError(f"no trie provided for relation {relation!r}")
        self._join(dict(tries), 0, {}, 1)

    def run_sharded(
        self, tries: Dict[str, GHT], shard_index: int, shard_count: int
    ) -> None:
        """Execute shard ``shard_index`` of ``shard_count`` over ``tries``.

        The root node's cover trie is restricted to a contiguous slice of its
        entries; the recursion below the root is unchanged.  The union of all
        shards' outputs equals (as a bag) the output of :meth:`run`, and with
        static cover selection the concatenation of shard outputs in shard
        order reproduces the serial output order exactly.  Each shard must run
        on its own trie instances (COLT forcing mutates trie nodes), which is
        how the parallel subsystem uses this entry point: one trie build per
        worker.
        """
        if shard_count <= 1:
            self.run(tries)
            return
        if not 0 <= shard_index < shard_count:
            raise ExecutionError(
                f"shard index {shard_index} out of range for {shard_count} shards"
            )
        for relation in self.plan.relations():
            if relation not in tries:
                raise ExecutionError(f"no trie provided for relation {relation!r}")

        from repro.parallel.sharding import ShardView

        working = dict(tries)
        info = self._nodes[0]
        cover_position = self._choose_cover(info, working)
        if cover_position is None:
            # Probe-only root node: nothing to partition, the whole plan is
            # one unit of work.  Shard 0 runs it, the others are empty.
            if shard_index == 0:
                self._join(working, 0, {}, 1)
            return
        relation = info.cover_plans[cover_position].relation
        working[relation] = ShardView(working[relation], shard_index, shard_count)
        self._join(working, 0, {}, 1)

    def run_task(
        self,
        tries: Dict[str, GHT],
        start: int,
        stop: int,
        sub_shard: Optional[Tuple[int, int]] = None,
        cover: Optional[str] = None,
    ) -> None:
        """Execute one scheduler task: root cover entries ``[start, stop)``.

        This is the work-stealing scheduler's unit of execution.  ``sub_shard``
        (``(index, count)``) additionally restricts the *second* plan node's
        cover to one of ``count`` slices — used when the root cover is so
        small that root ranges alone cannot feed every worker.  Sub-root tasks
        must target a single root entry (``stop == start + 1``); tasks over a
        single-node plan ignore ``sub_shard`` (only slice 0 runs, so the
        output is produced exactly once).

        ``cover`` names the root cover relation the task ranges were computed
        over.  Every task of one query MUST slice the same cover: COLT
        forcing shrinks ``key_count()`` estimates as tasks execute, so
        re-running dynamic cover selection per task could silently switch the
        iterated relation and drop (or repeat) outputs.  The scheduler pins
        the choice once per query; when ``cover`` is omitted this method pins
        its own choice for the duration of the task.

        Like :meth:`run_sharded`, each concurrent task must run over trie
        instances that are safe to share with its siblings: worker processes
        build their own tries, worker threads may share one build (forcing the
        same node twice is redundant but yields an equivalent map).
        """
        # Imported here, as in run_sharded: importing the parallel package at
        # module top would be circular (parallel.scheduler imports this module).
        from repro.parallel.sharding import RangeView

        for relation in self.plan.relations():
            if relation not in tries:
                raise ExecutionError(f"no trie provided for relation {relation!r}")
        working = dict(tries)
        info = self._nodes[0]
        if cover is None:
            cover_position = self._choose_cover(info, working)
        else:
            cover_position = next(
                (
                    position
                    for position in info.covers
                    if info.cover_plans[position].relation == cover
                ),
                None,
            )
            if cover_position is None:
                raise ExecutionError(
                    f"pinned cover {cover!r} is not a cover candidate of the "
                    f"root node {info.subatoms!r}"
                )
        if cover_position is None:
            # Probe-only root: a single unit of work, owned by the first task.
            if start <= 0 < stop and (sub_shard is None or sub_shard[0] == 0):
                self._join(working, 0, {}, 1)
            return
        if sub_shard is not None and (sub_shard[1] <= 1 or len(self._nodes) < 2):
            if sub_shard[0] != 0:
                return
            sub_shard = None
        relation = info.cover_plans[cover_position].relation
        working[relation] = RangeView(working[relation], start, stop)
        self._sub_shard = sub_shard
        self._pinned_covers[0] = cover_position
        try:
            self._join(working, 0, {}, 1)
        finally:
            self._sub_shard = None
            self._pinned_covers.clear()

    def _shard_second_level(
        self, tries: Dict[str, Optional[GHT]], sub_index: int, sub_count: int
    ) -> Optional[Dict[str, Optional[GHT]]]:
        """Restrict the depth-1 node's cover to one sub-shard slice.

        Returns ``None`` when this sub-task owns nothing at this depth (a
        probe-only second node belongs entirely to slice 0).  The cover is
        the node's *static* first candidate, pinned for the recursion: the
        dynamic heuristic keys off ``key_count()``, which changes as earlier
        sub-tasks force shared tries — two sub-tasks of one root entry
        slicing different covers would drop and repeat outputs.
        """
        from repro.parallel.sharding import ShardView

        info = self._nodes[1]
        if not info.new_variables:
            return tries if sub_index == 0 else None
        if not info.covers:
            raise PlanError(f"node {info.subatoms!r} has no cover")
        cover_position = info.covers[0]
        self._pinned_covers[1] = cover_position
        relation = info.cover_plans[cover_position].relation
        working = dict(tries)
        working[relation] = ShardView(working[relation], sub_index, sub_count)
        return working

    # ------------------------------------------------------------------ #
    # Recursive join (Figure 7)
    # ------------------------------------------------------------------ #

    def _join(
        self,
        tries: Dict[str, Optional[GHT]],
        depth: int,
        bindings: Dict[str, object],
        multiplicity: int,
    ) -> None:
        if depth == 1 and self._sub_shard is not None:
            sub_index, sub_count = self._sub_shard
            self._sub_shard = None
            sharded = self._shard_second_level(tries, sub_index, sub_count)
            if sharded is None:
                return
            tries = sharded
        if depth == len(self._nodes):
            self._output(bindings, multiplicity)
            return

        if self.factorize and self._factorizable_from[depth]:
            self._emit_factorized(tries, depth, bindings, multiplicity)
            return

        info = self._nodes[depth]
        cover_position = self._pinned_covers.get(depth)
        if cover_position is None:
            cover_position = self._choose_cover(info, tries)

        if cover_position is None:
            # The node introduces no new variables: probe every subatom.
            self._probe_only_node(tries, depth, bindings, multiplicity, info)
            return

        if self.batch_size > 1:
            run_node_vectorized(
                self, tries, depth, bindings, multiplicity, info, cover_position
            )
            return

        self._run_node_tuple_at_a_time(
            tries, depth, bindings, multiplicity, info, cover_position
        )

    def _run_node_tuple_at_a_time(
        self,
        tries: Dict[str, Optional[GHT]],
        depth: int,
        bindings: Dict[str, object],
        multiplicity: int,
        info: NodeInfo,
        cover_position: int,
    ) -> None:
        plan = info.cover_plans[cover_position]
        cover_relation = plan.relation
        cover_variables = plan.variables
        cover_single = plan.single
        cover_variable = cover_variables[0] if cover_single else None
        cover_trie = tries[cover_relation]
        probes = plan.probes
        bound_positions = plan.bound_positions
        stats = self.stats
        interrupt = self.interrupt
        next_depth = depth + 1

        for key, child in cover_trie.iter_entries():
            stats.iterations += 1
            if interrupt is not None:
                interrupt.tick()
            if cover_single:
                if bound_positions and key != bindings[cover_variable]:
                    continue
                bindings[cover_variable] = key
            else:
                if bound_positions and any(
                    key[i] != bindings[var] for i, var in bound_positions
                ):
                    continue
                for var, value in zip(cover_variables, key):
                    bindings[var] = value

            # Advance the cover's trie; remember what we overwrite so the
            # shared map can be restored before the next cover tuple.
            saved: List[Tuple[str, Optional[GHT]]] = [(cover_relation, cover_trie)]
            new_multiplicity = multiplicity
            if child is None:
                tries[cover_relation] = None
            elif child.is_leaf():
                new_multiplicity *= child.tuple_count()
                tries[cover_relation] = None
            else:
                tries[cover_relation] = child

            matched = True
            for relation, variables, single in probes:
                trie = tries[relation]
                if single:
                    probe_key = bindings[variables[0]]
                else:
                    probe_key = tuple(bindings[var] for var in variables)
                stats.probes += 1
                subtrie = trie.get(probe_key)
                if subtrie is None:
                    stats.failed_probes += 1
                    matched = False
                    break
                saved.append((relation, trie))
                if subtrie.is_leaf():
                    new_multiplicity *= subtrie.tuple_count()
                    tries[relation] = None
                else:
                    tries[relation] = subtrie

            if matched:
                self._join(tries, next_depth, bindings, new_multiplicity)

            for relation, previous in saved:
                tries[relation] = previous

    # ------------------------------------------------------------------ #
    # Shared helpers (also used by the vectorized path)
    # ------------------------------------------------------------------ #

    def _choose_cover(
        self, info: NodeInfo, tries: Dict[str, Optional[GHT]]
    ) -> Optional[int]:
        """Pick the subatom to iterate over, or ``None`` for probe-only nodes."""
        if not info.new_variables:
            return None
        candidates = info.covers
        if not candidates:
            raise PlanError(f"node {info.subatoms!r} has no cover")
        if not self.dynamic_cover or len(candidates) == 1:
            return candidates[0]
        return min(
            candidates,
            key=lambda position: tries[info.subatoms[position].relation].key_count(),
        )

    def _probe_only_node(
        self,
        tries: Dict[str, Optional[GHT]],
        depth: int,
        bindings: Dict[str, object],
        multiplicity: int,
        info: NodeInfo,
    ) -> None:
        saved: List[Tuple[str, Optional[GHT]]] = []
        matched = True
        stats = self.stats
        for subatom in info.subatoms:
            trie = tries[subatom.relation]
            if trie is None:
                raise ExecutionError(
                    f"relation {subatom.relation!r} was already consumed before "
                    f"probing subatom {subatom!r}"
                )
            if len(subatom.variables) == 1:
                probe_key = bindings[subatom.variables[0]]
            else:
                probe_key = tuple(bindings[var] for var in subatom.variables)
            stats.probes += 1
            subtrie = trie.get(probe_key)
            if subtrie is None:
                stats.failed_probes += 1
                matched = False
                break
            saved.append((subatom.relation, trie))
            if subtrie.is_leaf():
                multiplicity *= subtrie.tuple_count()
                tries[subatom.relation] = None
            else:
                tries[subatom.relation] = subtrie
        if matched:
            self._join(tries, depth + 1, bindings, multiplicity)
        for relation, previous in saved:
            tries[relation] = previous

    def _output(self, bindings: Dict[str, object], multiplicity: int) -> None:
        self.stats.outputs += 1
        row = tuple(bindings[var] for var in self.output_variables)
        self.sink.on_row(row, multiplicity)

    # ------------------------------------------------------------------ #
    # Factorized output (Section 4.4)
    # ------------------------------------------------------------------ #

    def _compute_factorizable_suffix(self) -> List[bool]:
        """For each depth, whether all remaining nodes are independent factors.

        A suffix of the plan can be emitted as a factorized group when every
        remaining node has exactly one subatom, that subatom binds only new
        variables (so it depends on nothing bound later), and its relation
        appears in no other remaining node.
        """
        length = len(self._nodes)
        factorizable = [False] * (length + 1)
        factorizable[length] = True
        suffix_relations: List[set] = [set() for _ in range(length + 1)]
        for depth in range(length - 1, -1, -1):
            info = self._nodes[depth]
            suffix_relations[depth] = suffix_relations[depth + 1] | {
                s.relation for s in info.subatoms
            }
            single = len(info.subatoms) == 1
            subatom = info.subatoms[0]
            independent = single and set(subatom.variables) <= info.new_variables
            not_reused = single and subatom.relation not in suffix_relations[depth + 1]
            factorizable[depth] = (
                factorizable[depth + 1] and single and independent and not_reused
            )
        return factorizable

    def _emit_factorized(
        self,
        tries: Dict[str, Optional[GHT]],
        depth: int,
        bindings: Dict[str, object],
        multiplicity: int,
    ) -> None:
        available = self._nodes[depth].available_variables if depth < len(self._nodes) else None
        if available is None:
            prefix_variables = list(self.output_variables)
        else:
            prefix_variables = [v for v in self.output_variables if v in available]
        prefix = tuple(bindings[v] for v in prefix_variables)
        factors = []
        for info in self._nodes[depth:]:
            subatom = info.subatoms[0]
            trie = tries[subatom.relation]
            if trie is None:
                raise ExecutionError(
                    f"relation {subatom.relation!r} consumed before factorized output"
                )
            single = len(subatom.variables) == 1
            rows: List[tuple] = []
            for key, child in trie.iter_entries():
                self.stats.iterations += 1
                row = (key,) if single else key
                if child is None:
                    rows.append(row)
                elif child.is_leaf():
                    rows.extend([row] * child.tuple_count())
                else:
                    raise ExecutionError(
                        f"factorized output expected a final level for "
                        f"{subatom.relation!r}, found deeper structure"
                    )
            factors.append((tuple(subatom.variables), rows))
        self.stats.outputs += 1
        self.sink.on_group(prefix, prefix_variables, factors, multiplicity)
