"""Free Join: the paper's primary contribution.

The public entry point is :class:`repro.core.engine.FreeJoinEngine`, which
takes an optimized binary plan (from :mod:`repro.optimizer`), converts it into
a Free Join plan (:func:`repro.core.convert.binary_to_free_join`), optimizes
the plan by factoring (:func:`repro.core.factor.factor_plan`), builds COLT
tries (:mod:`repro.core.colt`) and executes the plan with optional
vectorization (:mod:`repro.core.executor`, :mod:`repro.core.vectorized`).
"""

from repro.core.plan import FreeJoinNode, FreeJoinPlan
from repro.core.convert import binary_to_free_join
from repro.core.factor import factor_plan
from repro.core.colt import TrieStrategy, build_tries
from repro.core.engine import FreeJoinEngine, FreeJoinOptions

__all__ = [
    "FreeJoinNode",
    "FreeJoinPlan",
    "binary_to_free_join",
    "factor_plan",
    "TrieStrategy",
    "build_tries",
    "FreeJoinEngine",
    "FreeJoinOptions",
]
