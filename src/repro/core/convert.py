"""Converting binary join plans to Free Join plans (Section 4.1, Figure 9).

``binary_to_free_join`` translates a left-deep sequence of relations into the
equivalent Free Join plan: the left-most relation becomes the cover of the
first node, every subsequent relation contributes a probe subatom (over the
variables already available) to the current node and opens a new node with
its remaining variables.

Two small departures from the paper's Figure 9 pseudocode keep the produced
plans non-degenerate while preserving their meaning:

* A relation whose variables are all already available (a pure semijoin
  filter) does not open an empty node; subsequent probe subatoms are appended
  to the last real node instead.
* Probe subatoms with no variables (Cartesian products in the binary plan)
  are omitted; the relation's own node supplies the Cartesian iteration.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

from repro.errors import PlanError
from repro.core.plan import FreeJoinPlan
from repro.query.atoms import Atom, Subatom
from repro.query.conjunctive import ConjunctiveQuery


def binary_to_free_join(
    order: Sequence[str],
    atoms: Mapping[str, Atom],
) -> FreeJoinPlan:
    """Convert a left-deep relation order into an equivalent Free Join plan.

    Parameters
    ----------
    order:
        Relation (atom) names in pipeline order; the first is iterated, the
        rest are probed in order.
    atoms:
        Atoms keyed by name; used to look up each relation's variables.
    """
    if not order:
        raise PlanError("cannot convert an empty binary plan")
    for name in order:
        if name not in atoms:
            raise PlanError(f"binary plan references unknown relation {name!r}")
    if len(set(order)) != len(order):
        raise PlanError(f"binary plan repeats a relation: {list(order)}")

    first = atoms[order[0]]
    nodes: List[List[Subatom]] = []
    current: List[Subatom] = [Subatom(first.name, first.variables)]
    available = set(first.variables)

    for name in order[1:]:
        atom = atoms[name]
        probe_vars = [v for v in atom.variables if v in available]
        remaining_vars = [v for v in atom.variables if v not in available]

        target = current if current is not None else nodes[-1]
        if probe_vars:
            target.append(Subatom(name, probe_vars))
        elif not remaining_vars:
            # A relation with no variables at all: nothing to join on and
            # nothing left to bind.  This cannot occur for well-formed atoms
            # (tables have at least one column), so treat it as a plan error.
            raise PlanError(f"relation {name!r} has no variables")

        if current is not None:
            nodes.append(current)

        available.update(atom.variables)
        if remaining_vars:
            current = [Subatom(name, remaining_vars)]
        elif not probe_vars:
            # Pure Cartesian product: the relation still needs its own node to
            # iterate over (its variables are new but nothing is shared).
            current = [Subatom(name, atom.variables)]
        else:
            current = None

    if current is not None:
        nodes.append(current)

    return FreeJoinPlan.from_lists(nodes)


def binary_plan_to_free_join(
    pipeline_items: Sequence[str],
    query: ConjunctiveQuery,
    extra_atoms: Mapping[str, Atom] = (),
) -> FreeJoinPlan:
    """Convenience wrapper resolving atoms from a query plus extra atoms.

    ``extra_atoms`` supplies materialized intermediates (for bushy plans
    decomposed into pipelines) that are not part of the original query.
    """
    atom_map: Dict[str, Atom] = {atom.name: atom for atom in query.atoms}
    for name, atom in dict(extra_atoms).items():
        atom_map[name] = atom
    return binary_to_free_join(pipeline_items, atom_map)
