"""The Generalized Hash Trie (GHT) interface.

A GHT (Definition 3.1 in the paper) is a tree where each leaf is a vector of
tuples and each internal node is a hash map from key tuples to child nodes.
It generalizes both the hash tables used by binary join (two levels) and the
hash tries used by Generic Join (one single-variable level per attribute).

The executor accesses tries exclusively through this interface, so the three
trie strategies compared in Figure 17 (fully eager "simple trie", the simple
lazy trie of Freitag et al., and COLT) are interchangeable at run time.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.datatypes import Row


class GHT:
    """Interface of one node of a Generalized Hash Trie.

    Attributes
    ----------
    relation:
        Name of the atom this trie represents (sub-tries inherit it).
    vars:
        Variables of the keys (for a map node) or of the stored tuples (for a
        vector node) at this level.
    """

    relation: str
    vars: Tuple[str, ...]

    # ------------------------------------------------------------------ #
    # Structure
    # ------------------------------------------------------------------ #

    def levels_remaining(self) -> int:
        """Number of named levels at or below this node (>= 1)."""
        raise NotImplementedError

    def is_leaf(self) -> bool:
        """Whether this node is a leaf: no variables left, only multiplicity."""
        raise NotImplementedError

    def tuple_count(self) -> int:
        """Number of base-table tuples represented under this node."""
        raise NotImplementedError

    def key_count(self) -> int:
        """Number of keys at this level, or an estimate for unforced vectors.

        Used by dynamic cover selection (Section 4.4): the executor iterates
        over the cover with the fewest keys.  For an unforced COLT vector the
        estimate is the vector length, as described in the paper.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Access methods (Figure 5)
    # ------------------------------------------------------------------ #

    def iter_entries(self) -> Iterator[Tuple[Row, Optional["GHT"]]]:
        """Iterate ``(tuple, subtrie)`` pairs at this level.

        For a map node the pairs are ``(key, child)``.  For a vector node at
        the last level the pairs are ``(tuple, None)`` — there is no deeper
        structure, and each yielded tuple accounts for exactly one base-table
        row (bag semantics).
        """
        raise NotImplementedError

    def iter_entries_batched(
        self, batch_size: int
    ) -> Iterator[List[Tuple[Row, Optional["GHT"]]]]:
        """Iterate entries in batches of up to ``batch_size`` (Section 4.3)."""
        batch: List[Tuple[Row, Optional["GHT"]]] = []
        for entry in self.iter_entries():
            batch.append(entry)
            if len(batch) >= batch_size:
                yield batch
                batch = []
        if batch:
            yield batch

    def get(self, key: Row) -> Optional["GHT"]:
        """Probe this level with a key tuple; return the sub-trie or ``None``."""
        raise NotImplementedError
