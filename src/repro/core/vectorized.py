"""Vectorized execution for Free Join (Section 4.3, Figure 13).

Instead of fully processing one cover tuple at a time, the vectorized path
pulls a batch of tuples from the cover, then probes each non-cover trie once
per surviving batch element before moving to the next trie.  Grouping the
probes by trie improves temporal locality: the same hash map stays hot while
a whole batch probes it.  Tuples whose probe fails are dropped from the batch
so they are not probed again against later tries.

The implementation is columnar in spirit: each batch element carries only its
cover key, the trie overrides collected so far, and its multiplicity — the
shared binding environment is only touched when the batch element finally
recurses into the next plan node.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.ght import GHT

#: Default vectorization batch size used by the paper's experiments.
DEFAULT_BATCH_SIZE = 1000


def run_node_vectorized(
    executor,
    tries: Dict[str, Optional[GHT]],
    depth: int,
    bindings: Dict[str, object],
    multiplicity: int,
    info,
    cover_position: int,
) -> None:
    """Process one plan node in batches (the loop of Figure 13).

    ``executor`` is the :class:`repro.core.executor.FreeJoinExecutor` driving
    the execution; this function shares its statistics and key conventions so
    the tuple-at-a-time and vectorized paths have identical semantics
    (dynamic cover choice, multiplicity handling, bag semantics).
    """
    plan = info.cover_plans[cover_position]
    cover_variables = plan.variables
    cover_single = plan.single
    cover_relation = plan.relation
    cover_trie = tries[cover_relation]
    stats = executor.stats
    next_depth = depth + 1

    probes = plan.probes
    probe_slots = plan.probe_slots
    bound_positions = plan.bound_positions

    def cover_value(key, position: int):
        return key if cover_single else key[position]

    interrupt = executor.interrupt
    for batch in cover_trie.iter_entries_batched(executor.batch_size):
        stats.batches += 1
        if interrupt is not None:
            # One strided check per batch: deadline/cancellation abort lands
            # on a batch boundary, mirroring the tuple-at-a-time path.
            interrupt.tick()

        # Each survivor is [key, multiplicity, overrides] where overrides is
        # the list of (relation, new_trie) to apply before recursing.
        survivors: List[List[object]] = []
        for key, child in batch:
            stats.iterations += 1
            if bound_positions:
                if cover_single:
                    if key != bindings[cover_variables[0]]:
                        continue
                elif any(key[i] != bindings[var] for i, var in bound_positions):
                    continue
            new_multiplicity = multiplicity
            overrides: List[Tuple[str, Optional[GHT]]] = []
            if child is None:
                overrides.append((cover_relation, None))
            elif child.is_leaf():
                new_multiplicity *= child.tuple_count()
                overrides.append((cover_relation, None))
            else:
                overrides.append((cover_relation, child))
            survivors.append([key, new_multiplicity, overrides])

        # Probe one trie at a time across the whole batch (Figure 13).
        for (relation, _variables, single), slots in zip(probes, probe_slots):
            trie = tries[relation]
            get = trie.get
            still_alive: List[List[object]] = []
            for survivor in survivors:
                key = survivor[0]
                if single:
                    from_cover, position = slots[0]
                    probe_key = (
                        cover_value(key, position)
                        if from_cover
                        else bindings[position]
                    )
                else:
                    probe_key = tuple(
                        cover_value(key, position) if from_cover else bindings[position]
                        for from_cover, position in slots
                    )
                stats.probes += 1
                subtrie = get(probe_key)
                if subtrie is None:
                    stats.failed_probes += 1
                    continue
                if subtrie.is_leaf():
                    survivor[1] *= subtrie.tuple_count()
                    survivor[2].append((relation, None))
                else:
                    survivor[2].append((relation, subtrie))
                still_alive.append(survivor)
            survivors = still_alive
            if not survivors:
                break

        # Recurse for every surviving batch element, temporarily applying its
        # bindings and trie overrides to the shared state.
        for key, new_multiplicity, overrides in survivors:
            if cover_single:
                bindings[cover_variables[0]] = key
            else:
                for variable, value in zip(cover_variables, key):
                    bindings[variable] = value
            saved = [(relation, tries[relation]) for relation, _ in overrides]
            for relation, new_trie in overrides:
                tries[relation] = new_trie
            executor._join(tries, next_depth, bindings, new_multiplicity)
            for relation, previous in saved:
                tries[relation] = previous
