"""COLT: the Column-Oriented Lazy Trie (Section 4.2, Figures 11-12).

A :class:`LazyTrie` node stores either a vector of offsets into the base
table, or a hash map from keys to child nodes.  Vectors are *forced* into
hash maps on demand — the first ``get`` on a node pays the build cost, and
nodes that are never probed are never built.  The root node of a COLT is
special: it represents "the whole base table" without even materializing the
offset vector, so a relation that is only ever iterated (the left/cover
relation of a plan) incurs zero build cost.

Keys follow the column-oriented spirit of the paper's Rust implementation:
a level over a single variable is keyed by the bare value, a level over
several variables by the tuple of values.  :func:`level_key` and
:func:`make_key` centralize that convention so the executors and the trie
always agree on the key representation.

The same class also implements the two baseline strategies of the Figure 17
ablation:

* ``TrieStrategy.SIMPLE`` ("simple trie"): every level is forced eagerly at
  build time, like the classic Generic Join trie.
* ``TrieStrategy.SLT`` (simple lazy trie, Freitag et al.): the first level is
  forced eagerly, inner levels stay lazy.
* ``TrieStrategy.COLT``: everything is lazy.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.datatypes import Row
from repro.errors import PlanError
from repro.core.ght import GHT
from repro.query.atoms import Atom


def make_key(bindings: Dict[str, object], variables: Sequence[str]):
    """Build the probe key for a level from a binding environment.

    Single-variable levels use the bare value as the key; multi-variable
    levels use a tuple.  The executors must use this helper (or replicate its
    convention) so probe keys match the keys produced by :meth:`LazyTrie.force`.
    """
    if len(variables) == 1:
        return bindings[variables[0]]
    return tuple(bindings[var] for var in variables)


class TrieStrategy(str, Enum):
    """How eagerly trie levels are materialized (Figure 17 ablation)."""

    SIMPLE = "simple"  # fully expand every trie ahead of time
    SLT = "slt"        # expand the first level eagerly, inner levels lazily
    COLT = "colt"      # fully lazy, column-oriented

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class LazyTrie(GHT):
    """One node of a COLT over a single atom.

    Parameters
    ----------
    atom:
        The atom (base table + variable binding) this trie represents.
    schema:
        Remaining levels at and below this node: a list of variable tuples.
        The last level may be the empty tuple, representing a leaf that only
        carries multiplicity.
    offsets:
        Offsets into the base table represented by this node.  ``None`` means
        "all rows of the base table" and is only used at the root, so that a
        purely iterated relation never materializes even the offset vector.
    """

    __slots__ = ("relation", "atom", "schema", "vars", "_offsets", "_map", "_columns")

    def __init__(
        self,
        atom: Atom,
        schema: Sequence[Tuple[str, ...]],
        offsets: Optional[List[int]] = None,
    ) -> None:
        if not schema:
            raise PlanError(f"trie for {atom.name!r} needs at least one level")
        self.relation = atom.name
        self.atom = atom
        self.schema: Tuple[Tuple[str, ...], ...] = tuple(tuple(level) for level in schema)
        self.vars: Tuple[str, ...] = self.schema[0]
        self._offsets = offsets
        self._map: Optional[Dict[Row, "LazyTrie"]] = None
        self._columns: Optional[List[List]] = None

    # ------------------------------------------------------------------ #
    # Column access
    # ------------------------------------------------------------------ #

    def _level_columns(self) -> List[List]:
        """Column value vectors of the base table for this level's variables."""
        if self._columns is None:
            table = self.atom.table
            self._columns = [
                table.column(self.atom.column_for(var)).values for var in self.vars
            ]
        return self._columns

    # ------------------------------------------------------------------ #
    # GHT interface
    # ------------------------------------------------------------------ #

    def levels_remaining(self) -> int:
        return len(self.schema)

    def is_leaf(self) -> bool:
        return len(self.schema) == 1 and not self.vars

    def is_forced(self) -> bool:
        """Whether this node has been expanded into a hash map."""
        return self._map is not None

    def tuple_count(self) -> int:
        # Snapshot-then-check ordering: the parallel thread backend shares
        # tries, and force() publishes ``_map`` *before* clearing
        # ``_offsets``.  Reading offsets first means a reader either sees the
        # pre-force offsets (still correct) or, if it sees the cleared
        # ``None``, is guaranteed to find the map set.  Reading in the other
        # order could misreport a child node as "all rows of the table".
        offsets = self._offsets
        mapping = self._map
        if mapping is not None:
            return sum(child.tuple_count() for child in mapping.values())
        if offsets is None:
            return self.atom.size
        return len(offsets)

    def key_count(self) -> int:
        offsets = self._offsets  # snapshot before the map check, see tuple_count
        mapping = self._map
        if mapping is not None:
            return len(mapping)
        # Unforced vector: use the vector length as the estimate (Section 4.4).
        if offsets is None:
            return self.atom.size
        return len(offsets)

    def iter_entries(self) -> Iterator[Tuple[Row, Optional[GHT]]]:
        offsets = self._offsets  # snapshot before the map check, see tuple_count
        mapping = self._map
        if mapping is not None:
            return iter(mapping.items())
        if len(self.schema) == 1:
            # Last level: iterate the stored tuples directly from the columns,
            # without building any auxiliary structure.
            return self._iter_vector(offsets)
        # Inner level still stored as a vector: force it first, then iterate.
        self.force()
        assert self._map is not None
        return iter(self._map.items())

    def _iter_vector(self, offsets: Optional[List[int]]) -> Iterator[Tuple[Row, None]]:
        columns = self._level_columns()
        iterator = iter(range(self.atom.size)) if offsets is None else iter(offsets)
        if len(columns) == 1:
            column = columns[0]
            for offset in iterator:
                yield column[offset], None
        else:
            for offset in iterator:
                yield tuple(column[offset] for column in columns), None

    def get(self, key: Row) -> Optional["LazyTrie"]:
        self.force()
        assert self._map is not None
        return self._map.get(key)

    # ------------------------------------------------------------------ #
    # Forcing (Figure 12)
    # ------------------------------------------------------------------ #

    def force(self) -> None:
        """Expand this node's vector of offsets into a hash map of children.

        Safe under concurrent callers sharing one trie (the parallel thread
        backend): the offsets are snapshotted *before* the forced check, and
        the build iterates only that snapshot.  Two racing forcers then each
        build an equivalent map from the same offsets and the loser's
        assignment harmlessly replaces the winner's; a forcer can never
        observe the winner's cleared ``_offsets`` and rebuild the node from
        the whole base table.  (``_map`` is published before ``_offsets`` is
        cleared, which is what the snapshot-then-check readers above rely
        on.)
        """
        offsets = self._offsets
        if self._map is not None:
            return
        columns = self._level_columns()
        child_schema = self.schema[1:] if len(self.schema) > 1 else ((),)
        mapping: Dict[Row, LazyTrie] = {}
        atom = self.atom
        source = range(atom.size) if offsets is None else offsets
        if len(columns) == 1:
            column = columns[0]
            for offset in source:
                key = column[offset]
                child = mapping.get(key)
                if child is None:
                    child = LazyTrie(atom, child_schema, offsets=[])
                    mapping[key] = child
                child._offsets.append(offset)
        else:
            for offset in source:
                key = tuple(column[offset] for column in columns)
                child = mapping.get(key)
                if child is None:
                    child = LazyTrie(atom, child_schema, offsets=[])
                    mapping[key] = child
                child._offsets.append(offset)
        self._map = mapping
        self._offsets = None

    def force_recursive(self) -> None:
        """Expand this node and every descendant (the "simple trie" baseline)."""
        if self.is_leaf():
            return
        self.force()
        assert self._map is not None
        for child in self._map.values():
            if not child.is_leaf():
                child.force_recursive()

    # ------------------------------------------------------------------ #
    # Introspection helpers (used by tests and by the harness)
    # ------------------------------------------------------------------ #

    def forced_node_count(self) -> int:
        """Number of forced (hash map) nodes in this subtree."""
        if self._map is None:
            return 0
        return 1 + sum(child.forced_node_count() for child in self._map.values())

    def __repr__(self) -> str:
        state = "map" if self._map is not None else "vector"
        return (
            f"LazyTrie({self.relation}, vars={list(self.vars)}, "
            f"levels={len(self.schema)}, state={state}, tuples={self.tuple_count()})"
        )


def build_trie(
    atom: Atom,
    schema: Sequence[Tuple[str, ...]],
    strategy: TrieStrategy = TrieStrategy.COLT,
) -> LazyTrie:
    """Build the trie for one atom with the given level schema and strategy."""
    trie = LazyTrie(atom, schema, offsets=None)
    if strategy is TrieStrategy.SIMPLE:
        trie.force_recursive()
    elif strategy is TrieStrategy.SLT:
        if not trie.is_leaf():
            trie.force()
    return trie


def build_tries(
    atoms: Dict[str, Atom],
    schemas: Dict[str, List[Tuple[str, ...]]],
    strategy: TrieStrategy = TrieStrategy.COLT,
) -> Dict[str, LazyTrie]:
    """Build one trie per atom (the build phase of Section 3.3).

    Parameters
    ----------
    atoms:
        Atoms keyed by name.
    schemas:
        GHT level schemas keyed by atom name, as computed by
        :meth:`repro.core.plan.FreeJoinPlan.ght_schemas`.
    strategy:
        Laziness strategy, see :class:`TrieStrategy`.
    """
    tries: Dict[str, LazyTrie] = {}
    for name, atom in atoms.items():
        schema = schemas.get(name)
        if schema is None:
            raise PlanError(f"no GHT schema for atom {name!r}")
        tries[name] = build_trie(atom, schema, strategy)
    return tries
