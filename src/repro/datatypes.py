"""Value-domain helpers shared across the library.

The reproduction stores relational data as plain Python values.  A *value* is
an ``int``, ``float`` or ``str`` (the paper's benchmarks contain no NULLs, see
Section 5.1, but ``None`` is tolerated by the storage layer so that loaders do
not have to special-case missing cells).  A *row* is a tuple of values.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple, Union

Value = Union[int, float, str, None]
Row = Tuple[Value, ...]

#: Logical data types understood by the storage layer.
INT = "INT"
FLOAT = "FLOAT"
TEXT = "TEXT"

_TYPE_ORDER = {INT: 0, FLOAT: 1, TEXT: 2}


def infer_type(value: Value) -> Optional[str]:
    """Return the logical type of a single value, or ``None`` for NULL."""
    if value is None:
        return None
    if isinstance(value, bool):
        # Booleans are ints in Python; we store them as INT explicitly.
        return INT
    if isinstance(value, int):
        return INT
    if isinstance(value, float):
        return FLOAT
    if isinstance(value, str):
        return TEXT
    raise TypeError(f"unsupported value type: {type(value).__name__}")


def unify_types(first: Optional[str], second: Optional[str]) -> Optional[str]:
    """Combine two logical types, widening INT to FLOAT and anything to TEXT.

    ``None`` (meaning "unknown, only NULLs seen so far") defers to the other
    argument.
    """
    if first is None:
        return second
    if second is None:
        return first
    if first == second:
        return first
    return first if _TYPE_ORDER[first] >= _TYPE_ORDER[second] else second


def infer_column_type(values: Iterable[Value]) -> str:
    """Infer the logical type of a column from its values.

    A column of only NULLs defaults to TEXT.
    """
    current: Optional[str] = None
    for value in values:
        current = unify_types(current, infer_type(value))
        if current == TEXT:
            break
    return current if current is not None else TEXT


def parse_value(text: str) -> Value:
    """Parse a CSV cell into the narrowest value type that fits.

    Empty strings become ``None`` (missing).  Integers are preferred over
    floats, floats over text.
    """
    if text == "":
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def format_value(value: Value) -> str:
    """Render a value for CSV output; ``None`` becomes the empty string."""
    if value is None:
        return ""
    return str(value)


def rows_to_columns(rows: Sequence[Row], arity: int) -> list:
    """Transpose a sequence of rows into ``arity`` column lists."""
    columns = [[] for _ in range(arity)]
    for row in rows:
        if len(row) != arity:
            raise ValueError(
                f"row arity {len(row)} does not match expected arity {arity}"
            )
        for i, value in enumerate(row):
            columns[i].append(value)
    return columns


def columns_to_rows(columns: Sequence[Sequence[Value]]) -> list:
    """Transpose column lists back into a list of row tuples."""
    if not columns:
        return []
    return [tuple(col[i] for col in columns) for i in range(len(columns[0]))]
