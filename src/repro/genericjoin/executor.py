"""The Generic Join algorithm (Section 2.3, Figure 2b).

Generic Join processes one variable at a time: for each variable in the
global order it intersects the current trie levels of every relation
containing that variable, by iterating over the smallest level and probing
the others.  Bag multiplicities stored in the trie leaves are multiplied into
the output.

This engine matches the paper's baseline: all tries are built eagerly up
front and execution is strictly tuple-at-a-time (no vectorization).
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro import kernels
from repro.engine.output import CountSink, OutputSink, RowSink
from repro.engine.report import RunReport
from repro.errors import PlanError
from repro.genericjoin.trie import HashTrie, build_hash_trie
from repro.genericjoin.variable_order import (
    default_variable_order,
    variable_order_from_binary_plan,
)
from repro.optimizer.binary_plan import BinaryPlan
from repro.query.conjunctive import ConjunctiveQuery


@dataclass
class GenericJoinOptions:
    """Knobs of the Generic Join engine.

    ``parallelism > 1`` parallelizes the first variable's intersection (the
    iteration over the smallest trie level): ``scheduler="steal"`` (the only
    scheduler) decomposes it into fine-grained tasks for the persistent
    work-stealing pool (:mod:`repro.parallel.scheduler`).  ``parallel_mode``
    selects the backend (``"auto"``, ``"process"`` or ``"thread"``).
    """

    output: str = "rows"  # "rows" or "count"
    variable_order: Optional[Sequence[str]] = None
    parallelism: Optional[int] = None  # None = inherit the session setting
    parallel_mode: str = "auto"
    scheduler: Optional[str] = None  # None = "steal"
    #: Optional :class:`repro.parallel.cancellation.DeadlineToken`; the
    #: intersection loop ticks it per candidate value, so an expired or
    #: cancelled query aborts mid-recursion.
    deadline: Optional[object] = None

    def make_sink(self, variables: Sequence[str]) -> OutputSink:
        if self.output == "rows":
            return RowSink(variables)
        if self.output == "count":
            return CountSink(variables)
        raise PlanError(f"unknown output mode {self.output!r}")


class GenericJoinEngine:
    """Worst-case optimal Generic Join over eagerly built hash tries."""

    name = "generic"

    def __init__(self, options: Optional[GenericJoinOptions] = None) -> None:
        self.options = options or GenericJoinOptions()

    def run(
        self,
        query: ConjunctiveQuery,
        binary_plan: Optional[BinaryPlan] = None,
        options: Optional[GenericJoinOptions] = None,
        sink: Optional[OutputSink] = None,
    ) -> RunReport:
        """Execute ``query`` with Generic Join.

        The variable order is taken from ``options.variable_order`` when
        given, otherwise derived from ``binary_plan`` (the same order Free
        Join would use), otherwise a join-variables-first default.

        ``sink`` overrides the output sink; an incremental sink
        (:class:`~repro.engine.streaming.StreamingSink`) receives rows while
        the intersection recursion is still running (steal workers forward
        per task).  An aggregate sink
        (:class:`~repro.engine.streaming.StreamingAggregateSink`) makes
        steal workers fold their task's output — multiplicity-weighted, so
        bag semantics survive — into grouped partials shipped in place of
        rows.
        """
        options = options or self.options
        if options.variable_order is not None:
            order = list(options.variable_order)
        elif binary_plan is not None:
            order = variable_order_from_binary_plan(query, binary_plan)
        else:
            order = default_variable_order(query)
        self._check_order(query, order)

        output_mode = "rows" if sink is not None else options.output
        if (options.parallelism or 1) > 1 and output_mode in ("rows", "count"):
            from repro.core.engine import resolve_scheduler
            from repro.parallel.scheduler import run_generic_steal

            resolve_scheduler(options.scheduler)
            shard_run = run_generic_steal(
                list(query.atoms),
                query.output_variables,
                order,
                output=output_mode,
                workers=options.parallelism,
                mode=options.parallel_mode,
                interrupt=options.deadline,
                stream=sink,
            )
            kernel_stats = kernels.new_stats()
            kernels.merge_stats(kernel_stats, shard_run.extra.get("kernels_stats"))
            return RunReport(
                engine=self.name,
                result=shard_run.result,
                build_seconds=shard_run.build_seconds,
                join_seconds=shard_run.join_seconds,
                details={
                    "variable_order": order,
                    "options": options,
                    "kernels": kernels.kernel_report(
                        kernel_stats,
                        list(shard_run.extra.get("kernels_fallbacks", ())),
                    ),
                    # One entry per sharded unit, matching the list shape the
                    # pipelined engines report.
                    "parallel": [shard_run.details()],
                },
            )

        kernel_stats = kernels.new_stats()
        kernel_fallbacks: List[str] = []
        program = None
        atoms = list(query.atoms)
        if atoms:
            driver = self._kernel_driver(atoms, order)
            probes = [atom for atom in atoms if atom is not driver]
            # Bag semantics only: the kernel iterates driver *rows* and
            # carries multiplicities, where the trie recursion iterates
            # distinct values — same bag, different row grouping.
            program, reason = kernels.try_compile(
                driver,
                probes,
                query.output_variables,
                compress=True,
                stats=kernel_stats,
            )
            if program is None:
                kernel_fallbacks.append(reason)

        build_seconds = 0.0
        join_seconds = 0.0
        if program is not None:
            if sink is None:
                sink = options.make_sink(query.output_variables)
            started = time.perf_counter()
            try:
                kernels.execute_program(
                    program,
                    sink,
                    interrupt=options.deadline,
                    stats=kernel_stats,
                    factorize=getattr(sink, "accepts_factorized", False),
                )
            except kernels.KernelFrontierExplosion as exc:
                # Skew blew the frontier past the guard before anything was
                # emitted; the sink is untouched, so the trie recursion can
                # take over from scratch.
                program = None
                kernel_fallbacks.append(str(exc))
            join_seconds += time.perf_counter() - started
        if program is None:
            started = time.perf_counter()
            tries: Dict[str, HashTrie] = {}
            for atom in query.atoms:
                # Check between relations: each eager trie build is an
                # uninterruptible O(rows) scan, so deadline enforcement in the
                # build phase is per-relation granular.
                if options.deadline is not None:
                    options.deadline.check()
                tries[atom.name] = build_hash_trie(atom, order)
            build_seconds += time.perf_counter() - started

            if sink is None:
                sink = options.make_sink(query.output_variables)
            started = time.perf_counter()
            self._execute(query, order, tries, sink, interrupt=options.deadline)
            join_seconds += time.perf_counter() - started

        return RunReport(
            engine=self.name,
            result=sink.result(),
            build_seconds=build_seconds,
            join_seconds=join_seconds,
            details={
                "variable_order": order,
                "options": options,
                "kernels": kernels.kernel_report(kernel_stats, kernel_fallbacks),
            },
        )

    @staticmethod
    def _kernel_driver(atoms: Sequence, order: Sequence[str]):
        """The batch driver: smallest first-variable frontier.

        Mirrors the recursion's optimal-intersection heuristic at position 0
        (iterate the relation with the fewest distinct first-variable
        values); ties keep atom order, like the recursion's stable sort.
        """
        if not order or not kernels.enabled():
            return atoms[0]
        participants = [atom for atom in atoms if atom.has_variable(order[0])]
        if not participants:
            return atoms[0]
        return min(
            participants,
            key=lambda atom: kernels.column_distinct_count(
                atom.table.column(atom.column_for(order[0]))
            ),
        )

    # ------------------------------------------------------------------ #
    # Core recursion
    # ------------------------------------------------------------------ #

    @staticmethod
    def _check_order(query: ConjunctiveQuery, order: Sequence[str]) -> None:
        missing = set(query.variables) - set(order)
        if missing:
            raise PlanError(f"variable order is missing variables {sorted(missing)}")
        duplicates = len(order) != len(set(order))
        if duplicates:
            raise PlanError(f"variable order contains duplicates: {list(order)}")

    def _execute(
        self,
        query: ConjunctiveQuery,
        order: Sequence[str],
        tries: Dict[str, HashTrie],
        sink: OutputSink,
        interrupt=None,
    ) -> None:
        self._execute_atoms(
            list(query.atoms), query.output_variables, order, tries, sink,
            interrupt=interrupt,
        )

    @staticmethod
    def _execute_atoms(
        atoms: Sequence,
        output_variables: Sequence[str],
        order: Sequence[str],
        tries: Dict[str, HashTrie],
        sink: OutputSink,
        shard: Optional[Tuple[int, int]] = None,
        entry_range: Optional[Tuple[int, int]] = None,
        interrupt=None,
    ) -> None:
        """Run the Generic Join recursion over pre-built tries.

        ``shard`` (shard_index, shard_count) restricts the *first* variable's
        intersection to a contiguous slice of the smallest level's entries;
        the union of the slices reproduces the serial output (see
        :mod:`repro.parallel.sharding`).  ``entry_range`` is the
        task-granular variant used by the work-stealing scheduler: an
        explicit half-open slice ``[start, stop)`` of the same iteration.
        The smallest-level choice uses full level sizes, so every task (and
        every worker's private trie build) slices the same iteration order.
        """
        # For every variable, the atoms that contain it (their trie level is
        # keyed on it when the recursion reaches that variable).
        participants: List[List[str]] = [
            [atom.name for atom in atoms if atom.has_variable(var)]
            for var in order
        ]
        # Remaining variable count per atom, to detect completion (leaf).
        remaining: Dict[str, int] = {
            atom.name: atom.arity for atom in atoms
        }
        nodes: Dict[str, object] = {name: trie.root for name, trie in tries.items()}
        bindings: Dict[str, object] = {}

        def recurse(position: int, multiplicity: int) -> None:
            if position == len(order):
                row = tuple(bindings[v] for v in output_variables)
                sink.on_row(row, multiplicity)
                return

            variable = order[position]
            names = participants[position]
            if not names:
                # A variable bound by no relation cannot occur in a well-formed
                # query; guard to keep the recursion total.
                recurse(position + 1, multiplicity)
                return

            # Iterate over the smallest level, probe the others (optimal
            # intersection, Section 2.3).
            names = sorted(names, key=lambda n: len(nodes[n]))
            smallest = names[0]
            others = names[1:]

            saved = {name: nodes[name] for name in names}
            saved_remaining = {name: remaining[name] for name in names}

            entries = saved[smallest].items()
            if position == 0 and shard is not None:
                from repro.parallel.sharding import shard_bounds

                start, stop = shard_bounds(len(entries), shard[0], shard[1])
                entries = itertools.islice(iter(entries), start, stop)
            elif position == 0 and entry_range is not None:
                start, stop = entry_range
                entries = itertools.islice(iter(entries), start, stop)

            for value, child in entries:
                if interrupt is not None:
                    interrupt.tick()
                new_multiplicity = multiplicity
                matched = True
                for name in others:
                    other_child = saved[name].get(value)
                    if other_child is None:
                        matched = False
                        break
                    nodes[name] = other_child
                if not matched:
                    continue
                nodes[smallest] = child
                bindings[variable] = value

                for name in names:
                    remaining[name] = saved_remaining[name] - 1
                    if remaining[name] == 0:
                        # The relation's variables are exhausted: its node is
                        # now the leaf multiplicity.
                        new_multiplicity *= nodes[name]

                recurse(position + 1, new_multiplicity)

            for name in names:
                nodes[name] = saved[name]
                remaining[name] = saved_remaining[name]

        recurse(0, 1)
