"""Variable orders for Generic Join.

The paper's Generic Join baseline uses "the same variable order as Free Join"
(Section 5.1): Free Join's plan defines a partial order on variables (the
order its nodes bind them), extended to a total order.  Because Free Join
plans are themselves derived from the optimized binary plan, the variable
order ultimately follows the binary plan's left-to-right leaf order.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.plan import FreeJoinPlan
from repro.optimizer.binary_plan import BinaryPlan
from repro.query.conjunctive import ConjunctiveQuery


def variable_order_from_binary_plan(
    query: ConjunctiveQuery, plan: BinaryPlan
) -> List[str]:
    """Derive a total variable order from a binary plan's leaf order."""
    seen: Dict[str, None] = {}
    for leaf in plan.leaves():
        atom = query.atom(leaf)
        for var in atom.variables:
            seen.setdefault(var, None)
    # Any variable not mentioned by the plan (cannot happen for well-formed
    # plans, but guard anyway) goes last in query order.
    for var in query.variables:
        seen.setdefault(var, None)
    return list(seen)


def variable_order_from_free_join_plan(
    query: ConjunctiveQuery, plan: FreeJoinPlan
) -> List[str]:
    """Derive a total variable order from a Free Join plan.

    The plan's nodes define the partial order; variables within a node follow
    the subatom order, and any query variable the plan does not bind (which a
    valid plan cannot have) is appended in query order.
    """
    seen: Dict[str, None] = {}
    for var in plan.variable_order():
        seen.setdefault(var, None)
    for var in query.variables:
        seen.setdefault(var, None)
    return list(seen)


def default_variable_order(query: ConjunctiveQuery) -> List[str]:
    """A reasonable default order: join variables first, then the rest.

    Putting shared (join) variables early lets Generic Join intersect the
    relations before expanding dangling attributes, which is the behaviour the
    paper highlights on the clover query.
    """
    join_vars = query.join_variables()
    order = list(join_vars)
    for var in query.variables:
        if var not in order:
            order.append(var)
    return order
