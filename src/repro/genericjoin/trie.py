"""Hash tries for Generic Join (Section 2.3).

A hash trie has one level per attribute of the relation (following the query's
global variable order restricted to the relation's variables); each level is a
hash map from a single value to the next level, and the leaves store the bag
multiplicity of the tuple.  Building every trie eagerly up front is precisely
the preprocessing cost the paper identifies as Generic Join's main source of
inefficiency (Sections 2.4 and 4.2).
"""

from __future__ import annotations

from typing import Dict, Sequence, Union

from repro.errors import PlanError
from repro.query.atoms import Atom

#: A trie node is either an inner hash map or a leaf multiplicity count.
TrieNode = Union[Dict, int]


class HashTrie:
    """An eagerly built hash trie over one atom.

    Parameters
    ----------
    atom:
        The atom whose tuples the trie stores.
    variable_order:
        The relation's variables in global variable order; this determines the
        nesting order of the trie levels.
    """

    __slots__ = ("atom", "variable_order", "root", "build_rows")

    def __init__(self, atom: Atom, variable_order: Sequence[str]) -> None:
        ordered = list(variable_order)
        if set(ordered) != set(atom.variables):
            raise PlanError(
                f"variable order {ordered} does not cover the variables "
                f"{list(atom.variables)} of atom {atom.name!r}"
            )
        self.atom = atom
        self.variable_order = tuple(ordered)
        self.build_rows = atom.size
        self.root = self._build()

    def _build(self) -> TrieNode:
        columns = [
            self.atom.table.column(self.atom.column_for(var)).values
            for var in self.variable_order
        ]
        if not columns:
            return self.atom.size

        root: Dict = {}
        last = len(columns) - 1
        for offset in range(self.atom.size):
            node = root
            for level, column in enumerate(columns):
                value = column[offset]
                if level == last:
                    node[value] = node.get(value, 0) + 1
                else:
                    child = node.get(value)
                    if child is None:
                        child = {}
                        node[value] = child
                    node = child
        return root

    def level_count(self) -> int:
        """Number of named levels (one per variable)."""
        return len(self.variable_order)

    def key_count(self) -> int:
        """Number of distinct values at the first level."""
        if isinstance(self.root, int):
            return 1
        return len(self.root)


def build_hash_trie(atom: Atom, global_order: Sequence[str]) -> HashTrie:
    """Build the hash trie of an atom following a global variable order."""
    ordered = [var for var in global_order if atom.has_variable(var)]
    missing = set(atom.variables) - set(ordered)
    if missing:
        raise PlanError(
            f"global variable order {list(global_order)} does not mention "
            f"variables {sorted(missing)} of atom {atom.name!r}"
        )
    return HashTrie(atom, ordered)
