"""Generic Join: the worst-case optimal join baseline (Section 2.3)."""

from repro.genericjoin.trie import HashTrie, build_hash_trie
from repro.genericjoin.variable_order import (
    variable_order_from_binary_plan,
    variable_order_from_free_join_plan,
)
from repro.genericjoin.executor import GenericJoinEngine, GenericJoinOptions

__all__ = [
    "HashTrie",
    "build_hash_trie",
    "variable_order_from_binary_plan",
    "variable_order_from_free_join_plan",
    "GenericJoinEngine",
    "GenericJoinOptions",
]
