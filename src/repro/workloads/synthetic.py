"""Synthetic micro-workloads: the paper's example queries, parameterized.

These generators produce the instances the paper uses to *explain* Free Join:

* the clover query :math:`Q_\\clubsuit` with the skewed instance of Figure 3,
  where the binary plan takes :math:`\\Theta(n^2)` but the factored Free Join
  plan takes :math:`O(n)`;
* the triangle query :math:`Q_\\triangle` over random (optionally skewed)
  edge relations;
* chain, star and cycle queries of configurable length, used by unit tests
  and by the plan-conversion examples.

All generators are deterministic given a seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.errors import WorkloadError
from repro.query.builder import QueryBuilder
from repro.query.conjunctive import ConjunctiveQuery
from repro.storage.table import Table


# --------------------------------------------------------------------------- #
# Clover query (Figure 3)
# --------------------------------------------------------------------------- #


def clover_instance(n: int) -> Dict[str, Table]:
    """The clover instance of Figure 3.

    ``R`` is skewed on ``x1``/``x2``, ``S`` on ``x2``/``x3`` and ``T`` on
    ``x3``/``x1``; only the hub value ``x0`` joins across all three relations,
    so the full output has exactly one tuple while the pairwise join
    ``R JOIN S`` has :math:`n^2` tuples.
    """
    if n < 1:
        raise WorkloadError("clover instance needs n >= 1")
    # Encode x0..x3 as integers 0..3; attribute values get disjoint ranges.
    r_rows = [(0, 1000)]
    s_rows = [(0, 2000)]
    t_rows = [(0, 3000)]
    for i in range(1, n + 1):
        r_rows.append((1, 1000 + 2 * i))
        r_rows.append((2, 1000 + 2 * i + 1))
        s_rows.append((2, 2000 + 2 * i))
        s_rows.append((3, 2000 + 2 * i + 1))
        t_rows.append((3, 3000 + 2 * i))
        t_rows.append((1, 3000 + 2 * i + 1))
    return {
        "R": Table.from_rows("R", ["x", "a"], r_rows),
        "S": Table.from_rows("S", ["x", "b"], s_rows),
        "T": Table.from_rows("T", ["x", "c"], t_rows),
    }


def clover_query(tables: Dict[str, Table], name: str = "clover") -> ConjunctiveQuery:
    """Build :math:`Q_\\clubsuit(x,a,b,c) :- R(x,a), S(x,b), T(x,c)`."""
    builder = QueryBuilder(name)
    builder.add_atom("R", tables["R"], ["x", "a"])
    builder.add_atom("S", tables["S"], ["x", "b"])
    builder.add_atom("T", tables["T"], ["x", "c"])
    return builder.build()


# --------------------------------------------------------------------------- #
# Value sampling with skew
# --------------------------------------------------------------------------- #


def zipf_sample(rng: random.Random, domain: int, skew: float) -> int:
    """Sample a value in ``[0, domain)`` with an (approximate) Zipf-like skew.

    ``skew == 0`` is uniform.  Larger skew concentrates mass on small values;
    the implementation uses inverse-power transform sampling, which is cheap
    and good enough to create the hub-and-spoke join explosions the paper's
    analysis of JOB Q13a describes.
    """
    if domain <= 0:
        raise WorkloadError("domain must be positive")
    if skew <= 0:
        return rng.randrange(domain)
    u = rng.random()
    # Inverse-power transform: density ~ x^(-skew) over [1, domain].
    exponent = 1.0 - skew if skew != 1.0 else 1e-9
    value = (u * (domain ** exponent - 1.0) + 1.0) ** (1.0 / exponent)
    return min(domain - 1, max(0, int(value) - 1))


def _edge_table(
    name: str,
    columns: Tuple[str, str],
    num_rows: int,
    domain: int,
    skew: float,
    rng: random.Random,
) -> Table:
    sources = [zipf_sample(rng, domain, skew) for _ in range(num_rows)]
    targets = [zipf_sample(rng, domain, skew) for _ in range(num_rows)]
    return Table.from_columns(name, {columns[0]: sources, columns[1]: targets})


# --------------------------------------------------------------------------- #
# Triangle query
# --------------------------------------------------------------------------- #


def triangle_instance(
    n: int, domain: Optional[int] = None, skew: float = 0.0, seed: int = 0
) -> Dict[str, Table]:
    """Three random edge relations for the triangle query."""
    rng = random.Random(seed)
    domain = domain or max(4, int(n ** 0.5) * 2)
    return {
        "R": _edge_table("R", ("x", "y"), n, domain, skew, rng),
        "S": _edge_table("S", ("y", "z"), n, domain, skew, rng),
        "T": _edge_table("T", ("z", "x"), n, domain, skew, rng),
    }


def triangle_query(tables: Dict[str, Table], name: str = "triangle") -> ConjunctiveQuery:
    """Build :math:`Q_\\triangle(x,y,z) :- R(x,y), S(y,z), T(z,x)`."""
    builder = QueryBuilder(name)
    builder.add_atom("R", tables["R"], ["x", "y"])
    builder.add_atom("S", tables["S"], ["y", "z"])
    builder.add_atom("T", tables["T"], ["z", "x"])
    return builder.build()


# --------------------------------------------------------------------------- #
# Parameterized query families
# --------------------------------------------------------------------------- #


@dataclass
class SyntheticWorkload:
    """A generated query plus its input tables, for tests and examples."""

    name: str
    query: ConjunctiveQuery
    tables: Dict[str, Table]


#: The fan-out join over :func:`fanout_tables` (output ~ ``rows**2 / keys``).
FANOUT_SQL = "SELECT fan_r.a, fan_s.b FROM fan_r, fan_s WHERE fan_r.k = fan_s.k"

#: The grouped-aggregate shape over the same join: one group per join key,
#: a multiplicity-heavy COUNT and a value aggregate.  Shared by the
#: aggregation benchmark gate (``benchmarks/test_bench_aggregation.py``) and
#: the ``aggregation`` figure driver.
FANOUT_GROUP_SQL = (
    "SELECT fan_r.k AS k, COUNT(*) AS n, MIN(fan_s.b) AS lo "
    "FROM fan_r, fan_s WHERE fan_r.k = fan_s.k GROUP BY fan_r.k"
)


def fanout_tables(
    rows: int, keys: int = 20, seed: int = 42, skew: float = 0.0
) -> Dict[str, Table]:
    """Two relations whose equi-join fans out to ``~rows**2 / keys`` rows.

    The large-output workload shared by the streaming/aggregation benchmark
    gates (``benchmarks/test_bench_streaming.py``,
    ``benchmarks/test_bench_aggregation.py``) and the ``streaming`` /
    ``aggregation`` figure drivers — one definition, so the CI gates and the
    benchmark-history trend track the same join.  ``skew > 0`` draws the
    join keys from :func:`zipf_sample` instead of uniformly, concentrating
    the fan-out on a few hot keys (the shape the work-stealing scheduler is
    built for); ``skew == 0`` keeps the original uniform draw, so existing
    callers see byte-identical tables.  Deterministic for a fixed seed.
    """
    if rows < 1 or keys < 1:
        raise WorkloadError("fanout rows and keys must be positive")
    rng = random.Random(seed)

    def draw() -> int:
        return zipf_sample(rng, keys, skew) if skew > 0 else rng.randrange(keys)

    return {
        "fan_r": Table.from_columns("fan_r", {
            "k": [draw() for _ in range(rows)],
            "a": list(range(rows)),
        }),
        "fan_s": Table.from_columns("fan_s", {
            "k": [draw() for _ in range(rows)],
            "b": list(range(rows)),
        }),
    }


def chain_workload(
    length: int, rows_per_relation: int = 200, domain: int = 50,
    skew: float = 0.0, seed: int = 0,
) -> SyntheticWorkload:
    """A chain query ``R1(v0,v1), R2(v1,v2), ..., Rk(v_{k-1},v_k)``."""
    if length < 1:
        raise WorkloadError("chain length must be at least 1")
    rng = random.Random(seed)
    builder = QueryBuilder(f"chain_{length}")
    tables: Dict[str, Table] = {}
    for i in range(length):
        name = f"R{i + 1}"
        table = _edge_table(name, ("src", "dst"), rows_per_relation, domain, skew, rng)
        tables[name] = table
        builder.add_atom(name, table, [f"v{i}", f"v{i + 1}"])
    return SyntheticWorkload(f"chain_{length}", builder.build(), tables)


def star_workload(
    arms: int, rows_per_relation: int = 200, domain: int = 50,
    skew: float = 0.0, seed: int = 0,
) -> SyntheticWorkload:
    """A star query ``R1(h,a1), R2(h,a2), ..., Rk(h,ak)`` (clover-shaped)."""
    if arms < 1:
        raise WorkloadError("a star query needs at least one arm")
    rng = random.Random(seed)
    builder = QueryBuilder(f"star_{arms}")
    tables: Dict[str, Table] = {}
    for i in range(arms):
        name = f"R{i + 1}"
        table = _edge_table(name, ("hub", "spoke"), rows_per_relation, domain, skew, rng)
        tables[name] = table
        builder.add_atom(name, table, ["h", f"a{i + 1}"])
    return SyntheticWorkload(f"star_{arms}", builder.build(), tables)


def cycle_workload(
    length: int, rows_per_relation: int = 200, domain: int = 50,
    skew: float = 0.0, seed: int = 0,
) -> SyntheticWorkload:
    """A cycle query ``R1(v0,v1), ..., Rk(v_{k-1},v0)`` (cyclic for k >= 3)."""
    if length < 2:
        raise WorkloadError("a cycle query needs at least two relations")
    rng = random.Random(seed)
    builder = QueryBuilder(f"cycle_{length}")
    tables: Dict[str, Table] = {}
    for i in range(length):
        name = f"R{i + 1}"
        table = _edge_table(name, ("src", "dst"), rows_per_relation, domain, skew, rng)
        tables[name] = table
        first = f"v{i}"
        second = f"v{(i + 1) % length}"
        builder.add_atom(name, table, [first, second])
    return SyntheticWorkload(f"cycle_{length}", builder.build(), tables)


def random_tables(
    schemas: Dict[str, Sequence[str]],
    num_rows: int,
    domain: int,
    seed: int = 0,
    skew: float = 0.0,
) -> Dict[str, Table]:
    """Random tables with the given column names, for property-based tests."""
    rng = random.Random(seed)
    tables = {}
    for name, columns in schemas.items():
        data = {
            column: [zipf_sample(rng, domain, skew) for _ in range(num_rows)]
            for column in columns
        }
        tables[name] = Table.from_columns(name, data)
    return tables
