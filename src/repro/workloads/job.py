"""A synthetic Join Order Benchmark (JOB)-like workload.

The paper evaluates on JOB: 113 acyclic queries over the IMDB dataset with an
average of 8 joins per query, base-table filters, natural joins, and a simple
aggregate at the end (Section 5.1).  The IMDB dataset cannot be shipped, so
this module generates an IMDB-*like* database that preserves the two
properties the paper's analysis depends on:

* star-shaped schemas around a large fact-like table (``title``) with several
  large many-to-many satellite tables (``cast_info``, ``movie_info``,
  ``movie_keyword``, ``movie_companies``), and
* Zipf-skewed foreign keys, so that joining several satellites on the same
  attribute explodes intermediate results — the exact situation the paper
  dissects for JOB Q13a.

The query suite mirrors JOB's shape: acyclic, 3–8 joins, pushed-down filters,
``MIN``/``COUNT`` aggregates.  Query ``q13`` is designed as the Q13a
analogue: several large satellites joined on the same join key.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.storage.catalog import Catalog
from repro.storage.table import Table
from repro.workloads.synthetic import zipf_sample


@dataclass
class BenchmarkQuery:
    """One named benchmark query."""

    name: str
    sql: str
    category: str = "acyclic"
    description: str = ""


@dataclass
class JobWorkload:
    """Generated JOB-like tables plus the query suite."""

    catalog: Catalog
    queries: List[BenchmarkQuery]
    scale: float
    seed: int

    def query(self, name: str) -> BenchmarkQuery:
        """Look up a query by name."""
        for query in self.queries:
            if query.name == name:
                return query
        raise KeyError(f"no JOB query named {name!r}")

    def query_names(self) -> List[str]:
        """Names of all queries in suite order."""
        return [query.name for query in self.queries]


# --------------------------------------------------------------------------- #
# Data generation
# --------------------------------------------------------------------------- #

_COUNTRY_CODES = ["us", "gb", "de", "fr", "jp", "in", "ca", "it", "es", "se"]
_GENRES = [
    "drama", "comedy", "action", "thriller", "documentary",
    "horror", "romance", "animation", "crime", "adventure",
]
_KIND_NAMES = [
    "movie", "tv series", "tv movie", "video movie",
    "tv mini series", "video game", "episode", "short",
]
_COMPANY_KINDS = [
    "production companies", "distributors", "special effects companies",
    "miscellaneous companies",
]
_ROLE_NAMES = [
    "actor", "actress", "producer", "writer", "cinematographer",
    "composer", "costume designer", "director", "editor",
    "miscellaneous crew", "production designer", "guest",
]
_INFO_NAMES = [
    "genres", "rating", "release dates", "languages", "budget",
    "runtimes", "countries", "color info", "votes", "gross",
] + [f"info_type_{i}" for i in range(10, 40)]
_POPULAR_KEYWORDS = [
    "sequel", "character-name-in-title", "based-on-novel", "love",
    "murder", "independent-film", "female-nudity", "violence",
]


def _rows(base: int, scale: float) -> int:
    return max(4, int(base * scale))


def generate_job_workload(scale: float = 1.0, seed: int = 42) -> JobWorkload:
    """Generate the JOB-like workload at the given scale factor.

    ``scale=1.0`` yields a few thousand rows per large table — small enough
    for a pure-Python engine, large enough for skew effects to dominate.
    """
    rng = random.Random(seed)
    catalog = Catalog()

    n_title = _rows(3000, scale)
    n_company = _rows(300, scale)
    n_keyword = _rows(400, scale)
    n_person = _rows(2000, scale)

    # Dimension tables ---------------------------------------------------- #
    catalog.register(Table.from_columns("kind_type", {
        "id": list(range(1, len(_KIND_NAMES) + 1)),
        "kind": list(_KIND_NAMES),
    }))
    catalog.register(Table.from_columns("company_type", {
        "id": list(range(1, len(_COMPANY_KINDS) + 1)),
        "kind": list(_COMPANY_KINDS),
    }))
    catalog.register(Table.from_columns("role_type", {
        "id": list(range(1, len(_ROLE_NAMES) + 1)),
        "role": list(_ROLE_NAMES),
    }))
    catalog.register(Table.from_columns("info_type", {
        "id": list(range(1, len(_INFO_NAMES) + 1)),
        "info": list(_INFO_NAMES),
    }))
    catalog.register(Table.from_columns("company_name", {
        "id": list(range(n_company)),
        "name": [f"company_{i}" for i in range(n_company)],
        "country_code": [
            _COUNTRY_CODES[zipf_sample(rng, len(_COUNTRY_CODES), 1.1)]
            for _ in range(n_company)
        ],
    }))
    keyword_values = list(_POPULAR_KEYWORDS) + [
        f"keyword_{i}" for i in range(n_keyword - len(_POPULAR_KEYWORDS))
    ]
    catalog.register(Table.from_columns("keyword", {
        "id": list(range(n_keyword)),
        "keyword": keyword_values[:n_keyword],
    }))
    catalog.register(Table.from_columns("name", {
        "id": list(range(n_person)),
        "name": [f"person_{i}" for i in range(n_person)],
        "gender": [rng.choice(["m", "f"]) for _ in range(n_person)],
    }))

    # Fact-like tables ----------------------------------------------------- #
    catalog.register(Table.from_columns("title", {
        "id": list(range(n_title)),
        "title": [f"movie_{i}" for i in range(n_title)],
        "kind_id": [zipf_sample(rng, len(_KIND_NAMES), 0.8) + 1 for _ in range(n_title)],
        "production_year": [
            1950 + min(75, int(zipf_sample(rng, 75, 0.4))) for _ in range(n_title)
        ],
    }))

    def movie() -> int:
        # Skewed: popular movies attract many satellite rows (the Q13a effect).
        return zipf_sample(rng, n_title, 1.0)

    n_mc = _rows(6000, scale)
    catalog.register(Table.from_columns("movie_companies", {
        "movie_id": [movie() for _ in range(n_mc)],
        "company_id": [zipf_sample(rng, n_company, 1.0) for _ in range(n_mc)],
        "company_type_id": [
            zipf_sample(rng, len(_COMPANY_KINDS), 0.8) + 1 for _ in range(n_mc)
        ],
    }))

    n_mi = _rows(8000, scale)
    catalog.register(Table.from_columns("movie_info", {
        "movie_id": [movie() for _ in range(n_mi)],
        "info_type_id": [zipf_sample(rng, len(_INFO_NAMES), 1.0) + 1 for _ in range(n_mi)],
        "info": [rng.choice(_GENRES) for _ in range(n_mi)],
    }))

    n_midx = _rows(3000, scale)
    catalog.register(Table.from_columns("movie_info_idx", {
        "movie_id": [movie() for _ in range(n_midx)],
        "info_type_id": [rng.choice([2, 9]) for _ in range(n_midx)],
        "info": [round(1 + 9 * rng.random(), 1) for _ in range(n_midx)],
    }))

    n_mk = _rows(6000, scale)
    catalog.register(Table.from_columns("movie_keyword", {
        "movie_id": [movie() for _ in range(n_mk)],
        "keyword_id": [zipf_sample(rng, n_keyword, 1.1) for _ in range(n_mk)],
    }))

    n_ci = _rows(10000, scale)
    catalog.register(Table.from_columns("cast_info", {
        "movie_id": [movie() for _ in range(n_ci)],
        "person_id": [zipf_sample(rng, n_person, 0.9) for _ in range(n_ci)],
        "role_id": [zipf_sample(rng, len(_ROLE_NAMES), 0.8) + 1 for _ in range(n_ci)],
    }))

    return JobWorkload(catalog=catalog, queries=_job_queries(), scale=scale, seed=seed)


# --------------------------------------------------------------------------- #
# Query suite
# --------------------------------------------------------------------------- #


def _job_queries() -> List[BenchmarkQuery]:
    queries = [
        BenchmarkQuery("q01", """
            SELECT MIN(t.production_year) AS year
            FROM company_type AS ct, movie_companies AS mc, title AS t
            WHERE ct.kind = 'production companies'
              AND mc.company_type_id = ct.id AND mc.movie_id = t.id
              AND t.production_year > 1990
        """, description="2 joins through a small dimension"),
        BenchmarkQuery("q02", """
            SELECT MIN(t.title) AS movie_title
            FROM company_name AS cn, movie_companies AS mc, title AS t
            WHERE cn.country_code = 'de' AND cn.id = mc.company_id
              AND mc.movie_id = t.id
        """, description="company country filter"),
        BenchmarkQuery("q03", """
            SELECT MIN(t.production_year) AS year
            FROM keyword AS k, movie_keyword AS mk, title AS t
            WHERE k.keyword = 'sequel' AND k.id = mk.keyword_id
              AND mk.movie_id = t.id AND t.production_year > 1980
        """, description="keyword equality filter"),
        BenchmarkQuery("q04", """
            SELECT MIN(mi.info) AS rating, MIN(t.title) AS movie_title
            FROM info_type AS it, movie_info_idx AS mi, title AS t
            WHERE it.id = mi.info_type_id AND mi.movie_id = t.id
              AND mi.info > 5.0 AND t.production_year > 2000
        """, description="rating range"),
        BenchmarkQuery("q05", """
            SELECT MIN(t.title) AS movie_title
            FROM company_type AS ct, movie_companies AS mc, movie_info AS mi,
                 title AS t, info_type AS it
            WHERE ct.kind = 'production companies' AND mc.company_type_id = ct.id
              AND mc.movie_id = t.id AND mi.movie_id = t.id
              AND mi.info_type_id = it.id
              AND mi.info IN ('drama', 'comedy')
        """, description="two satellites on the same movie key"),
        BenchmarkQuery("q06", """
            SELECT MIN(k.keyword) AS kw, MIN(n.name) AS person
            FROM cast_info AS ci, keyword AS k, movie_keyword AS mk,
                 name AS n, title AS t
            WHERE k.keyword = 'character-name-in-title' AND mk.keyword_id = k.id
              AND mk.movie_id = t.id AND ci.movie_id = t.id
              AND ci.person_id = n.id
        """, description="cast and keyword satellites share the movie key"),
        BenchmarkQuery("q07", """
            SELECT MIN(t.production_year) AS year
            FROM cast_info AS ci, name AS n, role_type AS rt, title AS t
            WHERE ci.person_id = n.id AND ci.role_id = rt.id
              AND ci.movie_id = t.id AND n.gender = 'f'
              AND rt.role = 'actress'
        """, description="role and gender filters"),
        BenchmarkQuery("q08", """
            SELECT MIN(cn.name) AS company, MIN(t.title) AS movie_title
            FROM cast_info AS ci, company_name AS cn, movie_companies AS mc,
                 role_type AS rt, title AS t
            WHERE ci.movie_id = t.id AND mc.movie_id = t.id
              AND mc.company_id = cn.id AND ci.role_id = rt.id
              AND cn.country_code = 'us' AND rt.role = 'actor'
        """, description="cast x companies many-to-many on the movie key"),
        BenchmarkQuery("q09", """
            SELECT MIN(n.name) AS person, MIN(t.title) AS movie_title
            FROM cast_info AS ci, company_name AS cn, movie_companies AS mc,
                 name AS n, role_type AS rt, title AS t
            WHERE ci.movie_id = t.id AND mc.movie_id = t.id
              AND mc.company_id = cn.id AND ci.person_id = n.id
              AND ci.role_id = rt.id AND n.gender = 'f'
              AND cn.country_code = 'us'
        """, description="6-way acyclic join"),
        BenchmarkQuery("q10", """
            SELECT MIN(t.production_year) AS year, COUNT(*) AS matches
            FROM movie_keyword AS mk, keyword AS k, title AS t,
                 movie_info AS mi, info_type AS it
            WHERE mk.keyword_id = k.id AND mk.movie_id = t.id
              AND mi.movie_id = t.id AND mi.info_type_id = it.id
              AND it.info = 'genres' AND t.production_year BETWEEN 1985 AND 2015
        """, description="keyword x genre info"),
        BenchmarkQuery("q11", """
            SELECT MIN(cn.name) AS company
            FROM company_name AS cn, company_type AS ct, movie_companies AS mc,
                 title AS t, movie_keyword AS mk, keyword AS k
            WHERE cn.id = mc.company_id AND ct.id = mc.company_type_id
              AND mc.movie_id = t.id AND mk.movie_id = t.id
              AND mk.keyword_id = k.id AND cn.country_code <> 'jp'
              AND k.keyword = 'based-on-novel'
        """, description="6-way with inequality filter"),
        BenchmarkQuery("q12", """
            SELECT MIN(t.title) AS movie_title
            FROM movie_companies AS mc, movie_info AS mi, movie_info_idx AS midx,
                 title AS t, info_type AS it
            WHERE mc.movie_id = t.id AND mi.movie_id = t.id
              AND midx.movie_id = t.id AND midx.info_type_id = it.id
              AND midx.info > 9.0 AND mi.info = 'action'
        """, description="three satellites on the movie key"),
        BenchmarkQuery("q13", """
            SELECT MIN(t.production_year) AS year, COUNT(*) AS matches
            FROM cast_info AS ci, movie_keyword AS mk, movie_companies AS mc,
                 title AS t, company_name AS cn, keyword AS k
            WHERE ci.movie_id = t.id AND mk.movie_id = t.id
              AND mc.movie_id = t.id AND mc.company_id = cn.id
              AND mk.keyword_id = k.id AND cn.country_code = 'it'
              AND k.keyword = 'love'
        """, description="Q13a analogue: large many-to-many joins on one key, "
                         "pruned later by selective dimension joins"),
        BenchmarkQuery("q14", """
            SELECT MIN(mi.info) AS genre, MIN(t.production_year) AS year
            FROM info_type AS it, movie_info AS mi, movie_info_idx AS midx,
                 title AS t, kind_type AS kt
            WHERE it.id = mi.info_type_id AND mi.movie_id = t.id
              AND midx.movie_id = t.id AND kt.id = t.kind_id
              AND kt.kind = 'movie' AND midx.info > 7.0
        """, description="kind filter plus rating"),
        BenchmarkQuery("q15", """
            SELECT MIN(t.title) AS movie_title
            FROM title AS t, kind_type AS kt, movie_companies AS mc,
                 company_name AS cn, company_type AS ct
            WHERE t.kind_id = kt.id AND mc.movie_id = t.id
              AND mc.company_id = cn.id AND mc.company_type_id = ct.id
              AND kt.kind IN ('movie', 'tv series') AND cn.country_code = 'gb'
        """, description="snowflake around movie_companies"),
        BenchmarkQuery("q16", """
            SELECT MIN(n.name) AS person, COUNT(*) AS matches
            FROM cast_info AS ci, name AS n, title AS t, movie_keyword AS mk
            WHERE ci.person_id = n.id AND ci.movie_id = t.id
              AND mk.movie_id = t.id AND t.production_year > 2005
        """, description="cast x keyword explosion with year filter"),
        BenchmarkQuery("q17", """
            SELECT MIN(n.name) AS person
            FROM cast_info AS ci, name AS n, role_type AS rt,
                 movie_companies AS mc, company_name AS cn, title AS t
            WHERE ci.person_id = n.id AND ci.role_id = rt.id
              AND ci.movie_id = t.id AND mc.movie_id = t.id
              AND mc.company_id = cn.id
              AND rt.role IN ('actor', 'actress', 'director')
              AND n.name LIKE 'person_1%'
        """, description="LIKE filter on the person dimension"),
        BenchmarkQuery("q18", """
            SELECT MIN(t.production_year) AS year, MIN(k.keyword) AS kw
            FROM movie_keyword AS mk, keyword AS k, title AS t,
                 cast_info AS ci, role_type AS rt
            WHERE mk.keyword_id = k.id AND mk.movie_id = t.id
              AND ci.movie_id = t.id AND ci.role_id = rt.id
              AND rt.role = 'producer' AND k.keyword LIKE 'keyword_%'
        """, description="keyword prefix plus role filter"),
        BenchmarkQuery("q19", """
            SELECT MIN(t.title) AS movie_title, COUNT(*) AS matches
            FROM movie_info AS mi, movie_keyword AS mk, movie_companies AS mc,
                 title AS t, kind_type AS kt
            WHERE mi.movie_id = t.id AND mk.movie_id = t.id
              AND mc.movie_id = t.id AND t.kind_id = kt.id
              AND mi.info = 'horror'
              AND t.production_year BETWEEN 1995 AND 2020
        """, description="three satellites plus kind dimension"),
        BenchmarkQuery("q20", """
            SELECT MIN(t.production_year) AS year
            FROM cast_info AS ci, movie_info_idx AS midx, movie_keyword AS mk,
                 movie_companies AS mc, title AS t, company_name AS cn
            WHERE ci.movie_id = t.id AND midx.movie_id = t.id
              AND mk.movie_id = t.id AND mc.movie_id = t.id
              AND mc.company_id = cn.id AND cn.country_code = 'it'
              AND midx.info > 9.0
        """, description="four satellites with selective rating and country filters"),
    ]
    return [
        BenchmarkQuery(q.name, " ".join(q.sql.split()), q.category, q.description)
        for q in queries
    ]
