"""A synthetic LSQB-like workload (large-scale subgraph query benchmark).

The paper's second benchmark is LSQB [Mhedhbi et al. 2021]: subgraph-counting
queries over an LDBC-style social network, run at scale factors 0.1, 0.3, 1
and 3 (Section 5.1/5.2).  The defining properties reproduced here:

* a graph-shaped schema (persons, knows edges, interests, tags, cities,
  messages, likes) with many-to-many relationships,
* both cyclic (triangle, diamond-with-chord) and acyclic (star, path) query
  shapes — the paper stresses that cyclicity alone does not decide whether
  WCOJ wins; skew does,
* output sizes (before the final COUNT) much larger than the input, which
  makes output construction a major cost and motivates factorized output
  (Figure 19).

Row counts are scaled down to suit a pure-Python engine; the scale-factor
*ratios* (0.1 : 0.3 : 1 : 3) are preserved.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.storage.catalog import Catalog
from repro.storage.table import Table
from repro.workloads.job import BenchmarkQuery
from repro.workloads.synthetic import zipf_sample

#: The scale factors used by the paper.
PAPER_SCALE_FACTORS = (0.1, 0.3, 1.0, 3.0)


@dataclass
class LsqbWorkload:
    """Generated LSQB-like tables plus the query suite q1-q5."""

    catalog: Catalog
    queries: List[BenchmarkQuery]
    scale_factor: float
    seed: int

    def query(self, name: str) -> BenchmarkQuery:
        """Look up a query by name (``q1`` ... ``q5``)."""
        for query in self.queries:
            if query.name == name:
                return query
        raise KeyError(f"no LSQB query named {name!r}")

    def query_names(self) -> List[str]:
        """Names of all queries in suite order."""
        return [query.name for query in self.queries]


def _rows(base: int, scale_factor: float) -> int:
    return max(4, int(base * scale_factor))


def generate_lsqb_workload(scale_factor: float = 1.0, seed: int = 7) -> LsqbWorkload:
    """Generate the LSQB-like workload at the given scale factor."""
    rng = random.Random(seed)
    catalog = Catalog()

    n_person = _rows(300, scale_factor)
    n_city = max(4, _rows(30, min(scale_factor, 1.0)))
    n_tag = max(8, _rows(80, min(scale_factor, 1.0)))
    n_tagclass = 8
    n_knows = _rows(1400, scale_factor)
    n_interest = _rows(1100, scale_factor)
    n_message = _rows(700, scale_factor)
    n_likes = _rows(1500, scale_factor)

    catalog.register(Table.from_columns("country", {
        "id": list(range(6)),
        "name": [f"country_{i}" for i in range(6)],
    }))
    catalog.register(Table.from_columns("city", {
        "id": list(range(n_city)),
        "country_id": [zipf_sample(rng, 6, 0.6) for _ in range(n_city)],
    }))
    catalog.register(Table.from_columns("tagclass", {
        "id": list(range(n_tagclass)),
        "name": [f"class_{i}" for i in range(n_tagclass)],
    }))
    catalog.register(Table.from_columns("tag", {
        "id": list(range(n_tag)),
        "class_id": [zipf_sample(rng, n_tagclass, 0.7) for _ in range(n_tag)],
    }))
    catalog.register(Table.from_columns("person", {
        "id": list(range(n_person)),
        "city_id": [zipf_sample(rng, n_city, 0.7) for _ in range(n_person)],
    }))

    def person() -> int:
        # Social graphs are heavy-tailed: a few hub persons have many edges.
        return zipf_sample(rng, n_person, 0.8)

    knows_pairs = set()
    person1: List[int] = []
    person2: List[int] = []
    while len(person1) < n_knows:
        a, b = person(), person()
        if a == b or (a, b) in knows_pairs:
            continue
        knows_pairs.add((a, b))
        person1.append(a)
        person2.append(b)
    catalog.register(Table.from_columns("knows", {
        "person1_id": person1,
        "person2_id": person2,
    }))

    catalog.register(Table.from_columns("hasinterest", {
        "person_id": [person() for _ in range(n_interest)],
        "tag_id": [zipf_sample(rng, n_tag, 0.9) for _ in range(n_interest)],
    }))
    catalog.register(Table.from_columns("message", {
        "id": list(range(n_message)),
        "creator_id": [person() for _ in range(n_message)],
        "tag_id": [zipf_sample(rng, n_tag, 0.9) for _ in range(n_message)],
    }))
    catalog.register(Table.from_columns("likes", {
        "person_id": [person() for _ in range(n_likes)],
        "message_id": [zipf_sample(rng, n_message, 0.8) for _ in range(n_likes)],
    }))

    return LsqbWorkload(
        catalog=catalog,
        queries=_lsqb_queries(),
        scale_factor=scale_factor,
        seed=seed,
    )


def _lsqb_queries() -> List[BenchmarkQuery]:
    queries = [
        BenchmarkQuery("q1", """
            SELECT COUNT(*) AS matches
            FROM person AS p, city AS c, hasinterest AS hi, tag AS t, tagclass AS tc
            WHERE p.city_id = c.id AND hi.person_id = p.id
              AND hi.tag_id = t.id AND t.class_id = tc.id
        """, category="acyclic",
           description="interest star around person (acyclic, output >> input)"),
        BenchmarkQuery("q2", """
            SELECT COUNT(*) AS matches
            FROM knows AS k1, knows AS k2, knows AS k3
            WHERE k1.person2_id = k2.person1_id
              AND k2.person2_id = k3.person1_id
              AND k3.person2_id = k1.person1_id
        """, category="cyclic", description="friendship triangle (cyclic)"),
        BenchmarkQuery("q3", """
            SELECT COUNT(*) AS matches
            FROM knows AS k1, knows AS k2, knows AS k3, knows AS k4, knows AS k5
            WHERE k1.person2_id = k2.person1_id
              AND k2.person2_id = k3.person1_id
              AND k3.person2_id = k4.person1_id
              AND k4.person2_id = k1.person1_id
              AND k5.person1_id = k1.person1_id
              AND k5.person2_id = k2.person2_id
        """, category="cyclic",
           description="square with a chord: many overlapping cycles"),
        BenchmarkQuery("q4", """
            SELECT COUNT(*) AS matches
            FROM person AS p, knows AS k, hasinterest AS hi, likes AS l
            WHERE k.person1_id = p.id AND hi.person_id = p.id
              AND l.person_id = p.id
        """, category="acyclic",
           description="star query on person (knows x interests x likes)"),
        BenchmarkQuery("q5", """
            SELECT COUNT(*) AS matches
            FROM person AS p1, knows AS k, person AS p2, hasinterest AS hi,
                 tag AS t
            WHERE k.person1_id = p1.id AND k.person2_id = p2.id
              AND hi.person_id = p2.id AND hi.tag_id = t.id
        """, category="acyclic", description="friend-of-friend interest path"),
    ]
    return [
        BenchmarkQuery(q.name, " ".join(q.sql.split()), q.category, q.description)
        for q in queries
    ]
