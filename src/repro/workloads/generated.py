"""Statistics-driven random workload generation.

Port of the brad-style ``generate_workload.py`` idea onto this catalog: a
seeded sampler that draws acyclic join + aggregation queries whose shapes
and literals come from the *observed* data — join paths follow declared (or
name-inferred) foreign-key relationships, predicate literals are sampled
from actual column values, and numeric ranges respect the
:mod:`repro.optimizer.statistics` min/max/distinct statistics.  The result
is a corpus that exercises the whole SQL surface (IN / BETWEEN / LIKE /
NULL predicates, GROUP BY + HAVING, ORDER BY, LIMIT, DISTINCT,
LEFT OUTER JOIN) while staying executable and selective on the catalog it
was sampled from.

Queries are built as :class:`~repro.query.sql.ParsedQuery` ASTs and
rendered with :meth:`~repro.query.sql.ParsedQuery.to_sql` — the same
round-trip the parser property tests pin — so the differential shrinker
can mutate the AST and re-render minimized reproductions.

Determinism: query ``i`` of seed ``s`` depends only on ``(s, i)`` and the
catalog content, never on Python hash randomization or generation order —
``REPRO_FUZZ_SEED=7`` replays the exact CI corpus locally.

Generator policy choices that keep cross-engine differential comparison
exact:

* ``SUM``/``AVG`` are only emitted over integer-valued columns (integer
  sums are exact in float64 far beyond these table sizes, so worker fold
  order cannot change the result);
* ``SELECT *`` is only emitted for single-core-table queries (equality
  joins collapse the joined columns into one shared variable, so ``*``
  over a join has engine-defined width);
* every column reference is alias-qualified.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.datatypes import Value
from repro.errors import WorkloadError
from repro.optimizer.statistics import StatisticsCache, TableStatistics
from repro.query.expressions import (
    AggregateRef,
    Between,
    ColumnRef,
    Comparison,
    Expression,
    InList,
    IsNull,
    Like,
    Literal,
)
from repro.query.sql import FromItem, OrderItem, ParsedQuery, SelectItem
from repro.storage.catalog import Catalog
from repro.storage.table import Table

#: A joinable column pair: (table_a, column_a, table_b, column_b).
Relationship = Tuple[str, str, str, str]


@dataclass
class GeneratedQuery:
    """One sampled query: SQL text, its AST, and the features it exercises."""

    seed: int
    index: int
    sql: str
    parsed: ParsedQuery
    features: Dict[str, object] = field(default_factory=dict)

    def name(self) -> str:
        """Stable name for reports and corpus artifacts."""
        return f"gen-s{self.seed}-q{self.index}"


def infer_relationships(catalog: Catalog) -> List[Relationship]:
    """Infer joinable column pairs from shared column names across tables.

    The name-based default mirrors how the synthetic workloads declare
    foreign keys; pass explicit relationships to the generator when the
    schema does not follow that convention.
    """
    relationships: List[Relationship] = []
    names = sorted(catalog.table_names())
    for i, first in enumerate(names):
        for second in names[i + 1 :]:
            first_table = catalog.get(first)
            second_table = catalog.get(second)
            for column in first_table.column_names:
                if second_table.has_column(column):
                    relationships.append((first, column, second, column))
    return relationships


class WorkloadGenerator:
    """Seeded sampler of acyclic join + aggregation queries over a catalog."""

    #: LIKE patterns use substrings of sampled values with these shapes.
    _LIKE_SHAPES = ("prefix", "suffix", "contains")

    def __init__(
        self,
        catalog: Catalog,
        seed: int,
        relationships: Optional[Sequence[Relationship]] = None,
        max_joins: int = 3,
        statistics_cache: Optional[StatisticsCache] = None,
    ) -> None:
        if not catalog.table_names():
            raise WorkloadError("cannot generate queries over an empty catalog")
        if max_joins < 0:
            raise WorkloadError(f"max_joins must be >= 0, got {max_joins}")
        self.catalog = catalog
        self.seed = seed
        self.max_joins = max_joins
        self.statistics = statistics_cache or StatisticsCache()
        self.relationships = (
            list(relationships)
            if relationships is not None
            else infer_relationships(catalog)
        )
        #: table -> list of (own column, other table, other column).
        self._adjacent: Dict[str, List[Tuple[str, str, str]]] = {}
        for table_a, column_a, table_b, column_b in self.relationships:
            self._adjacent.setdefault(table_a, []).append((column_a, table_b, column_b))
            self._adjacent.setdefault(table_b, []).append((column_b, table_a, column_a))
        self._column_values: Dict[Tuple[str, str], List[Value]] = {}

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def query(self, index: int) -> GeneratedQuery:
        """Generate query ``index`` of this seed (pure in ``(seed, index)``)."""
        rng = random.Random(f"{self.seed}:{index}")
        parsed, features = self._sample_query(rng)
        return GeneratedQuery(
            seed=self.seed,
            index=index,
            sql=parsed.to_sql(),
            parsed=parsed,
            features=features,
        )

    def queries(self, count: int) -> List[GeneratedQuery]:
        """Generate the first ``count`` queries of this seed."""
        return [self.query(index) for index in range(count)]

    # ------------------------------------------------------------------ #
    # Sampling
    # ------------------------------------------------------------------ #

    def _sample_query(self, rng: random.Random) -> Tuple[ParsedQuery, Dict[str, object]]:
        from_items, equalities = self._sample_join_tree(rng)
        left_item = self._sample_left_join(rng, from_items)

        core_items = list(from_items)
        if left_item is not None:
            from_items = from_items + [left_item]

        where, predicate_features = self._sample_predicates(rng, core_items)
        where_conjuncts = equalities + where

        aggregate = rng.random() < 0.6
        if aggregate:
            parsed, shape_features = self._sample_aggregate_shape(
                rng, from_items, core_items, left_item, where_conjuncts
            )
        else:
            parsed, shape_features = self._sample_plain_shape(
                rng, from_items, core_items, left_item, where_conjuncts
            )

        features: Dict[str, object] = {
            "joins": len(core_items) - 1,
            "left_join": left_item is not None,
        }
        features.update(predicate_features)
        features.update(shape_features)
        return parsed, features

    def _sample_join_tree(
        self, rng: random.Random
    ) -> Tuple[List[FromItem], List[Expression]]:
        """Sample an acyclic chain/star of inner joins along relationships."""
        start = rng.choice(sorted(self.catalog.table_names()))
        items = [FromItem(start, "t0")]
        equalities: List[Expression] = []
        wanted = rng.randint(0, self.max_joins)
        for _ in range(wanted):
            frontier = [
                (position, edge)
                for position, item in enumerate(items)
                for edge in self._adjacent.get(item.table, [])
            ]
            if not frontier:
                break
            position, (own_column, other_table, other_column) = rng.choice(frontier)
            alias = f"t{len(items)}"
            items.append(FromItem(other_table, alias))
            equalities.append(
                Comparison(
                    "=",
                    ColumnRef(f"{items[position].alias}.{own_column}"),
                    ColumnRef(f"{alias}.{other_column}"),
                )
            )
        return items, equalities

    def _sample_left_join(
        self, rng: random.Random, core_items: List[FromItem]
    ) -> Optional[FromItem]:
        """Optionally attach one LEFT OUTER JOIN to a random core alias."""
        if rng.random() >= 0.3:
            return None
        anchors = [
            (item, edge)
            for item in core_items
            for edge in self._adjacent.get(item.table, [])
        ]
        if not anchors:
            return None
        anchor, (own_column, other_table, other_column) = rng.choice(anchors)
        alias = f"t{len(core_items)}"
        on: Expression = Comparison(
            "=",
            ColumnRef(f"{anchor.alias}.{own_column}"),
            ColumnRef(f"{alias}.{other_column}"),
        )
        # Optionally push one filter into the ON condition (the only legal
        # place to filter an optional table).
        if rng.random() < 0.4:
            extra = self._sample_predicate(rng, alias, self.catalog.get(other_table))
            if extra is not None:
                from repro.query.expressions import And

                on = And([on, extra])
        return FromItem(other_table, alias, join_type="left", on=on)

    # ------------------------------------------------------------------ #
    # Predicates
    # ------------------------------------------------------------------ #

    def _values(self, table: Table, column: str) -> List[Value]:
        key = (table.name, column)
        cached = self._column_values.get(key)
        if cached is None:
            cached = [v for v in table.column(column).values if v is not None]
            self._column_values[key] = cached
        return cached

    def _stats(self, table: Table) -> TableStatistics:
        return self.statistics.for_table(table)

    def _sample_predicates(
        self, rng: random.Random, core_items: List[FromItem]
    ) -> Tuple[List[Expression], Dict[str, object]]:
        conjuncts: List[Expression] = []
        kinds: List[str] = []
        for item in core_items:
            table = self.catalog.get(item.table)
            count = rng.choices((0, 1, 2), weights=(5, 4, 1))[0]
            for _ in range(count):
                predicate = self._sample_predicate(rng, item.alias, table)
                if predicate is not None:
                    conjuncts.append(predicate)
                    kinds.append(type(predicate).__name__.lower())
        features = {
            "predicates": len(conjuncts),
            "in": "inlist" in kinds,
            "between": "between" in kinds,
            "like": "like" in kinds,
            "null": "isnull" in kinds,
        }
        return conjuncts, features

    def _sample_predicate(
        self, rng: random.Random, alias: str, table: Table
    ) -> Optional[Expression]:
        """Sample one predicate on a random column, driven by its statistics."""
        column = rng.choice(list(table.column_names))
        ref = ColumnRef(f"{alias}.{column}")
        stats = self._stats(table).columns.get(column)
        values = self._values(table, column)
        nullable = table.column(column).null_count() > 0

        choices = []
        if nullable or rng.random() < 0.1:
            choices.append("null")
        if values:
            choices.extend(["compare", "in"])
            sample = values[0]
            if isinstance(sample, str):
                choices.append("like")
            if stats is not None and isinstance(sample, (int, float)):
                choices.append("between")
        if not choices:
            return None
        kind = rng.choice(choices)

        if kind == "null":
            return IsNull(ref, negated=rng.random() < 0.5)
        if kind == "compare":
            op = rng.choice(("=", "<", "<=", ">", ">=", "<>"))
            return Comparison(op, ref, Literal(rng.choice(values)))
        if kind == "in":
            width = rng.randint(1, min(4, len(values)))
            picked = [rng.choice(values) for _ in range(width)]
            return InList(ref, picked, negated=rng.random() < 0.2)
        if kind == "like":
            text = str(rng.choice(values))
            shape = rng.choice(self._LIKE_SHAPES)
            cut = max(1, len(text) // 2)
            if shape == "prefix":
                pattern = f"{text[:cut]}%"
            elif shape == "suffix":
                pattern = f"%{text[cut:]}" if text[cut:] else f"%{text}"
            else:
                pattern = f"%{text[:cut]}%"
            return Like(ref, pattern, negated=rng.random() < 0.2)
        # BETWEEN bounds come from the column statistics' observed range.
        low, high = sorted(
            (rng.choice(values), rng.choice(values)), key=lambda v: (str(type(v)), v)
        )
        if stats is not None and rng.random() < 0.5 and stats.minimum is not None:
            low = stats.minimum
        return Between(ref, Literal(low), Literal(high))

    # ------------------------------------------------------------------ #
    # Query shapes
    # ------------------------------------------------------------------ #

    def _int_columns(self, table: Table) -> List[str]:
        """Columns whose non-NULL values are all ints (exact SUM/AVG)."""
        result = []
        for column in table.column_names:
            values = self._values(table, column)
            if values and all(
                isinstance(v, int) and not isinstance(v, bool) for v in values
            ):
                result.append(column)
        return result

    def _all_columns(self, items: Sequence[FromItem]) -> List[str]:
        return [
            f"{item.alias}.{column}"
            for item in items
            for column in self.catalog.get(item.table).column_names
        ]

    def _sample_aggregate_shape(
        self,
        rng: random.Random,
        from_items: List[FromItem],
        core_items: List[FromItem],
        left_item: Optional[FromItem],
        where: List[Expression],
    ) -> Tuple[ParsedQuery, Dict[str, object]]:
        columns = self._all_columns(from_items)
        key_count = rng.choices((0, 1, 2), weights=(2, 5, 2))[0]
        group_by = rng.sample(columns, k=min(key_count, len(columns)))

        select_items = [SelectItem(None, column) for column in group_by]
        aggregates: List[SelectItem] = []
        for _ in range(rng.randint(1, 2)):
            aggregates.append(self._sample_aggregate(rng, from_items))
        # Deduplicate by label: two identical aggregate items add nothing.
        seen = {item.label() for item in select_items}
        for item in aggregates:
            if item.label() not in seen:
                seen.add(item.label())
                select_items.append(item)

        parsed = ParsedQuery(
            select_items=select_items,
            select_star=False,
            from_items=from_items,
            where=self._and(where),
            group_by=list(group_by),
        )

        aggregate_items = [item for item in select_items if item.function is not None]
        if rng.random() < 0.4:
            parsed.having = self._sample_having(rng, aggregate_items, from_items)
        if rng.random() < 0.5:
            parsed.order_by = self._sample_order(rng, select_items)
        if rng.random() < 0.4:
            parsed.limit = rng.randint(1, 20)

        features = {
            "aggregate": True,
            "group_by": bool(group_by),
            "having": parsed.having is not None,
            "order_by": bool(parsed.order_by),
            "limit": parsed.limit is not None,
            "distinct": False,
            "functions": sorted({item.function for item in aggregate_items}),
        }
        return parsed, features

    def _sample_aggregate(
        self, rng: random.Random, from_items: Sequence[FromItem]
    ) -> SelectItem:
        if rng.random() < 0.35:
            return SelectItem("COUNT", None)
        item = rng.choice(list(from_items))
        table = self.catalog.get(item.table)
        int_columns = self._int_columns(table)
        choices = ["MIN", "MAX", "COUNT"]
        if int_columns:
            choices.extend(["SUM", "AVG"])
        function = rng.choice(choices)
        if function in ("SUM", "AVG"):
            column = rng.choice(int_columns)
        else:
            column = rng.choice(list(table.column_names))
        return SelectItem(function, f"{item.alias}.{column}")

    def _sample_having(
        self,
        rng: random.Random,
        aggregate_items: Sequence[SelectItem],
        from_items: Sequence[FromItem],
    ) -> Optional[Expression]:
        if not aggregate_items:
            return None
        item = rng.choice(list(aggregate_items))
        ref = AggregateRef(item.function, item.column)
        if item.function == "COUNT" or item.column is None:
            bound: Value = rng.randint(1, 4)
        else:
            alias, column = item.column.split(".", 1)
            table_name = next(
                from_item.table
                for from_item in from_items
                if from_item.alias == alias
            )
            values = self._values(self.catalog.get(table_name), column)
            if not values:
                return None
            bound = rng.choice(values)
        op = rng.choice((">", ">=", "<", "<=", "="))
        return Comparison(op, ref, Literal(bound))

    def _sample_order(
        self, rng: random.Random, select_items: Sequence[SelectItem]
    ) -> List[OrderItem]:
        count = min(rng.randint(1, 2), len(select_items))
        picked = rng.sample(list(select_items), k=count)
        return [
            OrderItem(item.function, item.column, descending=rng.random() < 0.5)
            for item in picked
        ]

    def _sample_plain_shape(
        self,
        rng: random.Random,
        from_items: List[FromItem],
        core_items: List[FromItem],
        left_item: Optional[FromItem],
        where: List[Expression],
    ) -> Tuple[ParsedQuery, Dict[str, object]]:
        # SELECT * only when a join cannot collapse columns (single core
        # table; a left-joined table is fine, its columns are appended).
        star = len(core_items) == 1 and rng.random() < 0.25
        if star:
            select_items: List[SelectItem] = []
        else:
            columns = self._all_columns(from_items)
            width = min(rng.randint(1, 4), len(columns))
            select_items = [
                SelectItem(None, column) for column in rng.sample(columns, k=width)
            ]
        parsed = ParsedQuery(
            select_items=select_items,
            select_star=star,
            from_items=from_items,
            where=self._and(where),
            group_by=[],
            distinct=(not star) and rng.random() < 0.3,
        )
        if rng.random() < 0.5:
            order_source = (
                select_items
                if select_items
                else [SelectItem(None, column) for column in self._all_columns(from_items)]
            )
            parsed.order_by = self._sample_order(rng, order_source)
        if rng.random() < 0.4:
            parsed.limit = rng.randint(1, 20)
        features = {
            "aggregate": False,
            "group_by": False,
            "having": False,
            "order_by": bool(parsed.order_by),
            "limit": parsed.limit is not None,
            "distinct": parsed.distinct,
            "functions": [],
        }
        return parsed, features

    @staticmethod
    def _and(conjuncts: List[Expression]) -> Optional[Expression]:
        from repro.query.expressions import And

        if not conjuncts:
            return None
        if len(conjuncts) == 1:
            return conjuncts[0]
        return And(list(conjuncts))


# --------------------------------------------------------------------------- #
# Demo catalog (used by the fuzz tests and the CI workload-fuzz lane)
# --------------------------------------------------------------------------- #


def demo_catalog(seed: int = 7) -> Catalog:
    """A small seeded catalog with joins, NULLs, skew, and mixed types.

    Shapes mirror the paper's workloads in miniature: a customers/orders/
    items foreign-key chain (JOB-style acyclic joins) plus an events table
    fanning out of customers (star joins).  Dangling foreign keys and NULL
    keys are planted deliberately so LEFT OUTER JOIN and NULL-comparison
    semantics actually get exercised.
    """
    rng = random.Random(f"demo:{seed}")
    cities = ["amber", "basel", "carmel", "delft", None]
    status = ["open", "paid", "void"]
    kinds = ["click", "view", "buy", None]

    customers = Table.from_rows(
        "customers",
        ["id", "city", "age", "score"],
        [
            (
                i,
                rng.choice(cities),
                rng.randint(18, 80),
                round(rng.uniform(0.0, 5.0), 2),
            )
            for i in range(40)
        ],
    )
    orders = Table.from_rows(
        "orders",
        ["id", "cid", "amt", "status"],
        [
            (
                100 + i,
                # Skewed FK with dangling ids and NULLs.
                rng.choice([rng.randint(0, 39), rng.randint(0, 9), 999, None]),
                rng.randint(1, 500),
                rng.choice(status),
            )
            for i in range(90)
        ],
    )
    items = Table.from_rows(
        "items",
        ["order_id", "price", "kind"],
        [
            (
                100 + rng.randint(0, 99),  # some dangle past orders' ids
                rng.randint(1, 300),
                rng.choice(kinds),
            )
            for i in range(120)
        ],
    )
    events = Table.from_rows(
        "events",
        ["cid", "kind", "day"],
        [
            (
                rng.choice([rng.randint(0, 39), None]),
                rng.choice(["click", "view", "buy"]),
                rng.randint(1, 30),
            )
            for i in range(70)
        ],
    )
    catalog = Catalog()
    catalog.register_all([customers, orders, items, events])
    return catalog


#: Foreign-key relationships of :func:`demo_catalog`.
DEMO_RELATIONSHIPS: List[Relationship] = [
    ("customers", "id", "orders", "cid"),
    ("orders", "id", "items", "order_id"),
    ("customers", "id", "events", "cid"),
]


def demo_generator(seed: int, max_joins: int = 3) -> WorkloadGenerator:
    """The generator the fuzz tests and the CI workload-fuzz lane use."""
    return WorkloadGenerator(
        demo_catalog(),
        seed=seed,
        relationships=DEMO_RELATIONSHIPS,
        max_joins=max_joins,
    )
