"""Benchmark workloads: synthetic micro-queries, JOB-like, and LSQB-like data.

The paper evaluates on the Join Order Benchmark (real IMDB data) and LSQB
(synthetic social-graph data).  Neither dataset can be shipped here, so this
package generates synthetic datasets that reproduce the properties the
paper's analysis relies on: many-join acyclic queries with heavily skewed
many-to-many foreign keys (JOB), and cyclic/acyclic graph patterns whose
output is much larger than the input (LSQB).  See DESIGN.md for the full
substitution rationale.
"""

from repro.workloads.synthetic import (
    FANOUT_SQL,
    clover_instance,
    clover_query,
    fanout_tables,
    triangle_instance,
    chain_workload,
    star_workload,
    cycle_workload,
)
from repro.workloads.job import JobWorkload, generate_job_workload
from repro.workloads.lsqb import LsqbWorkload, generate_lsqb_workload
from repro.workloads.generated import (
    DEMO_RELATIONSHIPS,
    GeneratedQuery,
    WorkloadGenerator,
    demo_catalog,
    demo_generator,
    infer_relationships,
)

__all__ = [
    "DEMO_RELATIONSHIPS",
    "GeneratedQuery",
    "WorkloadGenerator",
    "demo_catalog",
    "demo_generator",
    "infer_relationships",
    "FANOUT_SQL",
    "clover_instance",
    "clover_query",
    "fanout_tables",
    "triangle_instance",
    "chain_workload",
    "star_workload",
    "cycle_workload",
    "JobWorkload",
    "generate_job_workload",
    "LsqbWorkload",
    "generate_lsqb_workload",
]
