"""Exception hierarchy for the Free Join reproduction library.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still being
able to distinguish the common failure categories.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """A table, column, or query referenced a schema element incorrectly.

    Raised for unknown columns, duplicate column names, arity mismatches
    between atoms and the tables they reference, and similar problems.
    """


class CatalogError(ReproError):
    """A catalog operation failed (unknown table, duplicate registration)."""


class QueryError(ReproError):
    """A query is malformed (invalid atoms, unbound variables, bad SQL)."""


class SQLSyntaxError(QueryError):
    """The SQL parser rejected the input text.

    Attributes
    ----------
    position:
        Character offset in the input where the error was detected, or -1
        when the offset is unknown.
    expected:
        Sorted tuple of the token texts/kinds the parser would have accepted
        at ``position`` (empty when the parser cannot enumerate them, e.g.
        tokenizer-level errors).
    """

    def __init__(
        self, message: str, position: int = -1, expected: tuple = ()
    ) -> None:
        super().__init__(message)
        self.position = position
        self.expected = tuple(expected)


class PlanError(ReproError):
    """A join plan (binary or Free Join) is invalid or cannot be executed."""


class ExecutionError(ReproError):
    """Runtime failure while executing a plan."""


class DeadlineExceeded(ExecutionError):
    """A query ran past its deadline and was aborted mid-execution.

    Raised cooperatively: executors and scheduler workers check the query's
    deadline token at trie-expansion boundaries, so the abort happens while
    the join is still running rather than after it completes.
    """


class QueryCancelled(ExecutionError):
    """A query was cancelled (by a caller, or because a sibling failed)."""


class WorkloadError(ReproError):
    """A workload generator was configured with invalid parameters."""


class AdmissionRejected(ReproError):
    """The admission gate refused a query before it started executing.

    Load shedding, not failure: the serving layer is saturated (per-class
    concurrency limit, bounded queue, or token-bucket rate), and rejecting
    immediately keeps the latency of admitted queries bounded instead of
    letting every request time out slowly.  Callers should treat this as
    retryable.

    Attributes
    ----------
    reason:
        Which limit rejected the query: ``"rate"``, ``"class_limit"`` or
        ``"queue_full"``.
    query_class:
        The admission class of the rejected query (``"point"`` or
        ``"analytic"``).
    """

    def __init__(self, message: str, reason: str = "", query_class: str = "") -> None:
        super().__init__(message)
        self.reason = reason
        self.query_class = query_class
