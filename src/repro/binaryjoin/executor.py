"""Pipelined execution of binary hash-join plans (Section 2.2).

Bushy plans are decomposed into left-deep pipelines; each pipeline iterates
over its left-most relation and probes hash tables built on the remaining
relations, exactly like the push-based execution the paper describes
(Figure 2a).  Intermediates of non-final pipelines are materialized as flat
tables holding all attributes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro import kernels
from repro.binaryjoin.hash_table import JoinHashTable
from repro.engine.output import CountSink, OutputSink, RowSink
from repro.engine.report import RunReport
from repro.errors import PlanError
from repro.optimizer.binary_plan import BinaryPlan, Pipeline
from repro.query.atoms import Atom
from repro.query.conjunctive import ConjunctiveQuery
from repro.storage.table import Table


@dataclass
class BinaryJoinOptions:
    """Knobs of the binary join engine.

    ``parallelism > 1`` parallelizes each pipeline's probe loop over the
    left-most relation's row offsets: ``scheduler="steal"`` (the only
    scheduler) decomposes the offsets into fine-grained tasks for the
    persistent work-stealing pool (:mod:`repro.parallel.scheduler`).
    ``parallel_mode`` selects the backend (``"auto"``, ``"process"`` or
    ``"thread"``).
    """

    output: str = "rows"  # "rows" or "count"
    parallelism: Optional[int] = None  # None = inherit the session setting
    parallel_mode: str = "auto"
    scheduler: Optional[str] = None  # None = "steal"
    #: Optional :class:`repro.parallel.cancellation.DeadlineToken`; the probe
    #: loop ticks it per left-relation row, so an expired or cancelled query
    #: aborts mid-pipeline with ``DeadlineExceeded``/``QueryCancelled``.
    deadline: Optional[object] = None

    def make_sink(self, variables: Sequence[str]) -> OutputSink:
        if self.output == "rows":
            return RowSink(variables)
        if self.output == "count":
            return CountSink(variables)
        raise PlanError(f"unknown output mode {self.output!r}")


class BinaryJoinEngine:
    """Traditional binary hash join over left-deep pipelines."""

    name = "binary"

    def __init__(self, options: Optional[BinaryJoinOptions] = None) -> None:
        self.options = options or BinaryJoinOptions()

    def run(
        self,
        query: ConjunctiveQuery,
        binary_plan: BinaryPlan,
        options: Optional[BinaryJoinOptions] = None,
        sink: Optional[OutputSink] = None,
    ) -> RunReport:
        """Execute ``query`` following ``binary_plan``.

        ``sink`` overrides the final pipeline's sink; an incremental sink
        (:class:`~repro.engine.streaming.StreamingSink`) receives rows while
        the probe loop is still running (steal workers forward per task).
        An aggregate sink
        (:class:`~repro.engine.streaming.StreamingAggregateSink`) makes
        steal workers fold their task's probe output into grouped partials
        and ship those instead of rows.
        """
        options = options or self.options
        pipelines = binary_plan.decompose()
        atoms: Dict[str, Atom] = {atom.name: atom for atom in query.atoms}

        build_seconds = 0.0
        join_seconds = 0.0
        other_seconds = 0.0
        final_result = None

        kernel_stats = kernels.new_stats()
        kernel_fallbacks: List[str] = []
        parallel_details: List[Dict[str, object]] = []
        for pipeline in pipelines:
            pipeline_atoms = self._resolve(pipeline, atoms)
            output_variables = self._output_variables(pipeline, pipeline_atoms, query)
            sink_mode = options.output if pipeline.is_final else "rows"
            final_sink = sink if pipeline.is_final else None
            if final_sink is not None:
                sink_mode = "rows"

            if (options.parallelism or 1) > 1:
                from repro.core.engine import resolve_scheduler
                from repro.parallel.scheduler import run_binary_pipeline_steal

                resolve_scheduler(options.scheduler)
                shard_run = run_binary_pipeline_steal(
                    pipeline_atoms,
                    output_variables,
                    output=sink_mode,
                    workers=options.parallelism,
                    mode=options.parallel_mode,
                    interrupt=options.deadline,
                    stream=final_sink,
                )
                build_seconds += shard_run.build_seconds
                join_seconds += shard_run.join_seconds
                parallel_details.append(shard_run.details())
                kernels.merge_stats(kernel_stats, shard_run.extra.get("kernels_stats"))
                kernel_fallbacks.extend(shard_run.extra.get("kernels_fallbacks", ()))
                result = shard_run.result
            else:
                if final_sink is not None:
                    pipeline_sink = final_sink
                elif pipeline.is_final:
                    pipeline_sink = options.make_sink(output_variables)
                else:
                    pipeline_sink = RowSink(output_variables)

                # Vectorized path: compile the pipeline into a batch kernel
                # program (no hash tables needed — probes run against cached
                # sorted indexes).  Count mode compresses dangling matches
                # into multiplicities; row mode expands fully, which keeps
                # the output byte-identical to the probe recursion.  Sinks
                # that accept factorized batches (streaming sinks, aggregate
                # folds) get output-only probes emitted as factors instead
                # of frontier expansions.
                factorize = pipeline.is_final and getattr(
                    pipeline_sink, "accepts_factorized", False
                )
                program, reason = kernels.try_compile(
                    pipeline_atoms[0],
                    pipeline_atoms[1:],
                    output_variables,
                    compress=(sink_mode == "count"),
                    stats=kernel_stats,
                )
                if program is not None:
                    started = time.perf_counter()
                    try:
                        kernels.execute_program(
                            program,
                            pipeline_sink,
                            interrupt=options.deadline,
                            stats=kernel_stats,
                            factorize=factorize,
                        )
                    except kernels.KernelFrontierExplosion as exc:
                        # Nothing reached the sink yet (guard invariant), so
                        # the probe loop can re-run the pipeline from scratch.
                        program, reason = None, str(exc)
                    join_seconds += time.perf_counter() - started
                if program is None:
                    kernel_fallbacks.append(reason)
                    started = time.perf_counter()
                    hash_tables = self._build_hash_tables(
                        pipeline_atoms, interrupt=options.deadline
                    )
                    build_seconds += time.perf_counter() - started

                    started = time.perf_counter()
                    self._run_pipeline(
                        pipeline_atoms,
                        hash_tables,
                        output_variables,
                        pipeline_sink,
                        interrupt=options.deadline,
                    )
                    join_seconds += time.perf_counter() - started
                result = pipeline_sink.result()

            if pipeline.is_final:
                final_result = result
            else:
                started = time.perf_counter()
                atoms[pipeline.output_name] = self._materialize(
                    pipeline.output_name, result
                )
                other_seconds += time.perf_counter() - started

        assert final_result is not None
        details: Dict[str, object] = {
            "num_pipelines": len(pipelines),
            "options": options,
            "kernels": kernels.kernel_report(kernel_stats, kernel_fallbacks),
        }
        if parallel_details:
            details["parallel"] = parallel_details
        return RunReport(
            engine=self.name,
            result=final_result,
            build_seconds=build_seconds,
            join_seconds=join_seconds,
            other_seconds=other_seconds,
            details=details,
        )

    # ------------------------------------------------------------------ #
    # Pipeline machinery
    # ------------------------------------------------------------------ #

    @staticmethod
    def _resolve(pipeline: Pipeline, atoms: Dict[str, Atom]) -> List[Atom]:
        missing = [name for name in pipeline.items if name not in atoms]
        if missing:
            raise PlanError(
                f"pipeline {pipeline!r} references unmaterialized relations {missing}"
            )
        return [atoms[name] for name in pipeline.items]

    @staticmethod
    def _output_variables(
        pipeline: Pipeline, pipeline_atoms: List[Atom], query: ConjunctiveQuery
    ) -> List[str]:
        if pipeline.is_final:
            return list(query.output_variables)
        seen: Dict[str, None] = {}
        for atom in pipeline_atoms:
            for var in atom.variables:
                seen.setdefault(var, None)
        return list(seen)

    @staticmethod
    def _build_hash_tables(
        pipeline_atoms: List[Atom],
        interrupt=None,
    ) -> List[Optional[JoinHashTable]]:
        """Build one hash table per probed relation (none for the left-most).

        The deadline token is checked between relations: each build is an
        uninterruptible O(rows) scan, so enforcement during the build phase
        is per-relation granular (the probe loop then ticks per row).
        """
        tables: List[Optional[JoinHashTable]] = [None]
        available = set(pipeline_atoms[0].variables)
        for atom in pipeline_atoms[1:]:
            if interrupt is not None:
                interrupt.check()
            key_variables = [v for v in atom.variables if v in available]
            tables.append(JoinHashTable(atom, key_variables))
            available.update(atom.variables)
        return tables

    @staticmethod
    def _run_pipeline(
        pipeline_atoms: List[Atom],
        hash_tables: List[Optional[JoinHashTable]],
        output_variables: List[str],
        sink: OutputSink,
        offset_range: Optional[Tuple[int, int]] = None,
        interrupt=None,
    ) -> None:
        """Run one pipeline's probe loop over the left relation's rows.

        ``offset_range`` restricts the iteration to a half-open slice of the
        left relation's offsets; the parallel subsystem shards a pipeline by
        giving each worker one slice (the union of the slices reproduces the
        serial output exactly, order included).
        """
        left = pipeline_atoms[0]
        left_columns = [
            left.table.column(left.column_for(var)).values for var in left.variables
        ]
        bindings: Dict[str, object] = {}

        def probe_level(position: int) -> None:
            if position == len(pipeline_atoms):
                sink.on_row(tuple(bindings[v] for v in output_variables), 1)
                return
            atom = pipeline_atoms[position]
            table = hash_tables[position]
            key = table.make_key(bindings)
            for offset in table.probe(key):
                values = table.row_values(offset)
                for var, value in zip(atom.variables, values):
                    bindings[var] = value
                probe_level(position + 1)

        start, stop = offset_range if offset_range is not None else (0, left.size)
        for offset in range(start, stop):
            if interrupt is not None:
                interrupt.tick()
            for var, column in zip(left.variables, left_columns):
                bindings[var] = column[offset]
            probe_level(1)

    @staticmethod
    def _materialize(name: str, result) -> Atom:
        variables = list(result.variables)
        table = Table.from_rows(name, variables, list(result.iter_rows()))
        return Atom(name, table, variables)
