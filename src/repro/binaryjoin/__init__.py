"""Traditional binary hash join engine (the paper's DuckDB-role baseline)."""

from repro.binaryjoin.hash_table import JoinHashTable
from repro.binaryjoin.executor import BinaryJoinEngine

__all__ = ["JoinHashTable", "BinaryJoinEngine"]
