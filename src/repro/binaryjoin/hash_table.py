"""Join hash tables for the binary hash join engine.

A :class:`JoinHashTable` maps a key (the values of the join variables) to the
offsets of the matching rows in the build-side table.  This mirrors the
two-level structure the paper identifies as a special case of the GHT: level
0 stores the keys and level 1 stores vectors of tuples (Section 3.1).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.datatypes import Row
from repro.query.atoms import Atom


class JoinHashTable:
    """A hash table over an atom, keyed on a subset of its variables."""

    __slots__ = ("atom", "key_variables", "_buckets", "_columns")

    def __init__(self, atom: Atom, key_variables: Sequence[str]) -> None:
        self.atom = atom
        self.key_variables: Tuple[str, ...] = tuple(key_variables)
        key_columns = [
            atom.table.column(atom.column_for(var)).values for var in self.key_variables
        ]
        self._columns = [
            atom.table.column(atom.column_for(var)).values for var in atom.variables
        ]
        buckets: Dict[Row, List[int]] = {}
        if len(key_columns) == 1:
            # Single-variable keys use the bare value, matching the key
            # convention of the COLT tries so all engines pay the same
            # hashing cost.
            column = key_columns[0]
            for offset in range(atom.size):
                buckets.setdefault(column[offset], []).append(offset)
        else:
            for offset in range(atom.size):
                key = tuple(column[offset] for column in key_columns)
                buckets.setdefault(key, []).append(offset)
        self._buckets = buckets

    def make_key(self, bindings: Dict[str, object]):
        """Build the probe key for this table from a binding environment."""
        if len(self.key_variables) == 1:
            return bindings[self.key_variables[0]]
        return tuple(bindings[var] for var in self.key_variables)

    def __len__(self) -> int:
        return len(self._buckets)

    def probe(self, key: Row) -> List[int]:
        """Row offsets matching the key (empty list when the probe misses)."""
        return self._buckets.get(key, [])

    def row_values(self, offset: int) -> Row:
        """All variable values of the row at ``offset``, in atom variable order."""
        return tuple(column[offset] for column in self._columns)

    def build_size(self) -> int:
        """Number of rows indexed (used for reporting)."""
        return self.atom.size
