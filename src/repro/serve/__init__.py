"""Async serving layer: deadlines, cancellation, bounded concurrency.

Public surface::

    from repro.serve import AsyncDatabase, DeadlineToken

    from repro import ExecOptions

    async with AsyncDatabase(parallelism=4) as db:
        outcome = await db.execute("SELECT COUNT(*) FROM r, s WHERE ...",
                                   options=ExecOptions(timeout=0.5))
        async for batch in db.execute_stream("SELECT * FROM ..."):
            ...
        async for deltas in db.subscribe_stream("SELECT x, SUM(y) ..."):
            ...
        results = await db.gather_many(queries, max_concurrency=4)

See :mod:`repro.serve.async_db` for the semantics and
:mod:`repro.parallel.cancellation` for how deadlines reach the executors.
"""

from repro.errors import DeadlineExceeded, QueryCancelled
from repro.parallel.cancellation import DeadlineToken
from repro.serve.async_db import DEFAULT_CONCURRENCY, AsyncDatabase

__all__ = [
    "AsyncDatabase",
    "DeadlineToken",
    "DeadlineExceeded",
    "QueryCancelled",
    "DEFAULT_CONCURRENCY",
]
