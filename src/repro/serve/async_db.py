"""An asyncio facade over :class:`~repro.engine.session.Database`.

:class:`AsyncDatabase` turns the synchronous session into a serving layer:
queries run on a bounded thread pool (each on a fresh ``Database`` over the
shared catalog and statistics cache, mirroring ``execute_many``'s isolation
model), the event loop stays free, and every query carries a
:class:`~repro.parallel.cancellation.DeadlineToken` that makes the two
serving guarantees real:

* **deadlines** — ``await db.execute(sql, timeout=0.1)`` aborts the join
  *mid-execution* once the budget is spent, raising
  :class:`~repro.errors.DeadlineExceeded`; on parallel sessions the token is
  pushed into the steal pools so in-flight tasks die with it.
* **cancellation** — cancelling the awaiting asyncio task flips the token,
  and the worker thread (plus any steal-pool tasks it fanned out) unwinds at
  its next trie-expansion check instead of running to completion.  The
  thread-pool slot frees promptly, so a cancelled request cannot clog the
  server.

Throughput on CPython is still bounded by the GIL for thread-backed
execution; sessions configured with ``parallelism > 1`` (process steal
pools) push the join work out of the serving process, which is the intended
production shape.  Repeated queries additionally hit the fingerprint-keyed
context caches (:mod:`repro.parallel.context_cache`), so a warm serving
process skips per-query trie rebuilds entirely.

Two more serving-layer pieces compose with the pool:

* **admission control** — pass ``admission=AdmissionGate(...)`` and every
  query must clear the gate before it takes a pool slot: over-limit
  requests fail *immediately* with
  :class:`~repro.errors.AdmissionRejected` (load shedding) instead of
  queueing toward a slow ``DeadlineExceeded``.  The gate also feeds
  queue-depth-aware worker sizing: under concurrent load each admitted
  query gets a proportionally smaller intra-query worker slice.
* **routing** — per-query sessions share the wrapped database's
  :class:`~repro.router.policy.QueryRouter`, so ``engine="auto"`` requests
  served concurrently all train (and consult) one feedback store.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace
from typing import TYPE_CHECKING, AsyncIterator, Dict, Iterable, List, Optional, Union

from repro.engine.options import ExecOptions, resolve_options
from repro.engine.session import Database, QueryOutcome
from repro.errors import DeadlineExceeded, QueryError
from repro.parallel.workload import normalize_queries
from repro.router.admission import AdmissionGate, AdmissionTicket, classify_sql

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.views.standing import StandingQuery

#: Default size of the serving thread pool.
DEFAULT_CONCURRENCY = 8
#: ``gather_many`` retry policy for transient admission rejections: at most
#: this many re-attempts per query, with exponential backoff between them.
ADMISSION_RETRIES = 4
ADMISSION_BACKOFF_INITIAL = 0.02
ADMISSION_BACKOFF_MAX = 0.2


class AsyncDatabase:
    """Async serving wrapper: ``await``-able queries with deadlines.

    Parameters
    ----------
    database:
        The session to serve.  When omitted, a fresh :class:`Database` is
        created from ``db_options`` (which are forwarded verbatim, e.g.
        ``parallelism=4, parallel_mode="process"``, or
        ``feedback_path="router.json"`` to serve with a durable feedback
        store — :meth:`close` persists it even when the underlying
        database stays open).
    max_concurrency:
        Size of the worker thread pool — the hard cap on queries executing
        simultaneously.  ``gather_many`` can bound itself further per call.
    admission:
        Optional :class:`~repro.router.admission.AdmissionGate`.  When set,
        every query (awaited or streamed) must be admitted before it takes
        a pool slot; rejected queries raise
        :class:`~repro.errors.AdmissionRejected` without executing, and
        per-query intra-query parallelism shrinks with queue depth via
        :meth:`AdmissionGate.suggest_workers`.  ``None`` (the default)
        admits everything, preserving the pre-gate behavior.
    """

    def __init__(
        self,
        database: Optional[Database] = None,
        *,
        max_concurrency: int = DEFAULT_CONCURRENCY,
        admission: Optional[AdmissionGate] = None,
        **db_options,
    ) -> None:
        if max_concurrency < 1:
            raise QueryError(
                f"max_concurrency must be at least 1, got {max_concurrency}"
            )
        if database is not None and db_options:
            raise QueryError(
                "pass either an existing database or session options, not both"
            )
        self.database = database or Database(**db_options)
        self.max_concurrency = max_concurrency
        self.admission = admission
        self._executor = ThreadPoolExecutor(
            max_workers=max_concurrency, thread_name_prefix="repro-serve"
        )
        self._closed = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    async def close(self, close_database: bool = False) -> None:
        """Stop accepting queries and release the serving thread pool.

        ``close_database=True`` additionally tears down the process-wide
        parallel resources (steal pools, shm exports, context caches) via
        :meth:`Database.close` — only do that when this is the last session.
        """
        self._closed = True
        # Waiting would block the event loop; threads drain in the
        # background, and cancelled queries unwind at their next token check.
        self._executor.shutdown(wait=False)
        # What the router learned while serving survives the server even if
        # the session object lives on (Database.close saves again — saving
        # is idempotent).
        self.database.save_feedback()
        if close_database:
            await asyncio.get_running_loop().run_in_executor(
                None, self.database.close
            )

    async def __aenter__(self) -> "AsyncDatabase":
        return self

    async def __aexit__(self, exc_type, exc_value, traceback) -> None:
        await self.close()

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    async def execute(
        self,
        sql: str,
        *,
        engine: Optional[str] = None,
        name: str = "",
        timeout: Optional[float] = None,
        freejoin_options=None,
        query_class: Optional[str] = None,
        options: Optional[ExecOptions] = None,
    ) -> QueryOutcome:
        """Execute one query off-loop; deadline-enforced, cancellation-safe.

        Per-query knobs travel in ``options``
        (:class:`~repro.engine.options.ExecOptions`); the loose
        ``engine``/``timeout``/``freejoin_options`` kwargs are the deprecated
        legacy spelling.

        Raises :class:`~repro.errors.DeadlineExceeded` when the budget
        expires mid-query.  If the awaiting task is cancelled, the query's
        deadline token is cancelled too, so the worker thread aborts promptly
        (the ``CancelledError`` still propagates to the caller).

        With an admission gate configured, raises
        :class:`~repro.errors.AdmissionRejected` *before* taking a pool slot
        when the server is saturated.  ``query_class`` overrides the default
        SQL-shape classification (``"point"`` / ``"analytic"``).
        """
        if self._closed:
            raise QueryError("AsyncDatabase is closed")
        opts = resolve_options(
            options,
            "AsyncDatabase.execute",
            engine=engine,
            timeout=timeout,
            freejoin_options=freejoin_options,
        )
        ticket = self._admit(sql, query_class)
        try:
            token = opts.resolve_deadline(always=True)
            loop = asyncio.get_running_loop()
            future = loop.run_in_executor(
                self._executor,
                lambda: self._execute_blocking(sql, opts, name, token, ticket),
            )
            try:
                return await future
            except asyncio.CancelledError:
                # Ordering matters: flip the token *before* re-raising, so by
                # the time the caller observes the cancellation the worker
                # thread is already unwinding.
                token.cancel()
                raise
        finally:
            self._release(ticket)

    def _admit(self, sql: str, query_class: Optional[str]) -> Optional[AdmissionTicket]:
        """Clear the gate (or raise AdmissionRejected); no-op without one."""
        if self.admission is None:
            return None
        return self.admission.admit(query_class or classify_sql(sql))

    def _release(self, ticket: Optional[AdmissionTicket]) -> None:
        if ticket is not None:
            self.admission.release(ticket)

    def admission_stats(self) -> Optional[Dict[str, object]]:
        """The gate's telemetry snapshot, or ``None`` without a gate."""
        return self.admission.snapshot() if self.admission is not None else None

    def _make_session(
        self, freejoin_options, parallelism: Optional[int] = None
    ) -> Database:
        # A fresh session per query over the shared catalog + statistics
        # cache (the execute_many isolation model): per-query state like
        # engine options never leaks across concurrent requests, while the
        # process-wide pools, shm exports and context caches are still
        # shared, which is where the warm-path speedups live.  The router is
        # shared too, so concurrent "auto" queries train one feedback store.
        session = Database(
            self.database.catalog,
            default_engine=self.database.default_engine,
            freejoin_options=freejoin_options or self.database.freejoin_options,
            parallelism=parallelism
            if parallelism is not None
            else self.database.parallelism,
            parallel_mode=self.database.parallel_mode,
            scheduler=self.database.scheduler,
            router=self.database.router,
        )
        session.statistics_cache = self.database.statistics_cache
        return session

    def _admitted_workers(self, ticket: Optional[AdmissionTicket]) -> Optional[int]:
        """Queue-depth-aware per-query worker count (None = session default)."""
        if ticket is None:
            return None
        return self.admission.suggest_workers(self.database.parallelism)

    def _execute_blocking(
        self, sql, opts: ExecOptions, name, token, ticket=None
    ) -> QueryOutcome:
        # Explicit per-query parallelism wins over the gate's suggestion.
        workers = (
            opts.parallelism
            if opts.parallelism is not None
            else self._admitted_workers(ticket)
        )
        session = self._make_session(opts.freejoin_options, parallelism=workers)
        outcome = session._execute(
            sql, replace(opts, deadline=token, timeout=None), name=name
        )
        if ticket is not None:
            # Routed queries already carry a "router" record; admitted
            # explicit-engine queries get one holding just the gate's view.
            detail = outcome.report.details.setdefault("router", {})
            detail["admission"] = {
                "query_class": ticket.query_class,
                "depth_at_admit": ticket.depth_at_admit,
                "workers": workers,
            }
        return outcome

    async def execute_stream(
        self,
        sql: str,
        *,
        batch_rows: Optional[int] = None,
        max_batches: Optional[int] = None,
        engine: Optional[str] = None,
        name: str = "",
        timeout: Optional[float] = None,
        freejoin_options=None,
        query_class: Optional[str] = None,
        options: Optional[ExecOptions] = None,
    ) -> AsyncIterator[List[tuple]]:
        """Stream a query's result rows in batches of ``options.batch_rows``.

        Per-query knobs travel in ``options``
        (:class:`~repro.engine.options.ExecOptions`); the loose keyword
        arguments are the deprecated legacy spelling (``batch_rows`` and
        ``max_batches`` default to 1024 and 8 when unset either way).

        A true execution stream: the join runs on one serving-pool slot
        (counted against ``max_concurrency`` like any other query) and
        pushes batches into a bounded queue — ``max_batches`` deep — as it
        produces them, so the first batch is yielded *while the join is
        still running* and a slow consumer backpressures the producer
        instead of buffering the whole result.

        Grouped-aggregate queries stream **group deltas** through the same
        queue (the partial-aggregate plane of
        :meth:`~repro.engine.session.Database.execute_iter`): each yielded
        row carries a group's current aggregate values, later rows supersede
        earlier ones with the same group key (last-write-wins; collapse with
        :func:`repro.engine.streaming.collapse_grouped_batches`), and the
        stream ends with a full final snapshot in deterministic group-key
        order — so a dashboard can render progressive aggregates mid-join
        and still finish with the exact ``execute()`` result.

        ``timeout`` covers execution **and** delivery: a consumer that
        stalls past the budget gets :class:`~repro.errors.DeadlineExceeded`
        and the producer aborts, freeing its slot instead of staying pinned
        behind a dead client.  Breaking out of the ``async for`` (or
        cancelling the consuming task) cancels the query cooperatively; the
        producer and any steal-pool tasks it fanned out unwind promptly and
        the pools stay warm.
        """
        if self._closed:
            raise QueryError("AsyncDatabase is closed")
        opts = resolve_options(
            options,
            "AsyncDatabase.execute_stream",
            batch_rows=batch_rows,
            max_batches=max_batches,
            engine=engine,
            timeout=timeout,
            freejoin_options=freejoin_options,
        )
        ticket = self._admit(sql, query_class)
        try:
            token = opts.resolve_deadline(always=True)
            loop = asyncio.get_running_loop()
            workers = (
                opts.parallelism
                if opts.parallelism is not None
                else self._admitted_workers(ticket)
            )
            session = self._make_session(opts.freejoin_options, parallelism=workers)

            def open_stream():
                # The producer occupies one serving slot (self._executor), so
                # streamed queries count against max_concurrency like awaited
                # ones.  Batch fetches below use the default executor instead —
                # taking a second serving slot per get would deadlock a
                # max_concurrency=1 server against its own producer.
                return session.execute_iter(
                    sql,
                    name=name,
                    executor=self._executor,
                    options=replace(opts, deadline=token, timeout=None),
                )

            # Planning (and a cold statistics scan) happens inside
            # execute_iter, so open off-loop too.
            stream = await loop.run_in_executor(None, open_stream)
            try:
                while True:
                    batch = await loop.run_in_executor(None, stream.next_batch)
                    if batch is None:
                        break
                    yield batch
            except asyncio.CancelledError:
                # Flip the token before surfacing the cancel so the producer
                # (and its pool tasks) is already unwinding.
                token.cancel()
                raise
            finally:
                await loop.run_in_executor(None, stream.close)
        finally:
            self._release(ticket)

    async def subscribe_stream(
        self,
        sql: str,
        *,
        options: Optional[ExecOptions] = None,
        name: str = "",
    ) -> AsyncIterator[List[tuple]]:
        """Subscribe to a standing query and stream its delta batches.

        Wraps :meth:`Database.subscribe` on the underlying session (the
        subscription outlives any per-query serving session, so it lives on
        ``self.database`` itself): the first yielded batch carries the seed
        snapshot, every later one the group deltas of an append — rows
        upsert by group key, same contract as
        :meth:`~repro.views.StandingQuery.next_batch`.

        The blocking waits run on the *default* executor, not the serving
        pool, so an idle subscription never pins a ``max_concurrency`` slot.
        Exiting the ``async for`` (or cancelling the task) closes the
        subscription and detaches its table hooks.
        """
        if self._closed:
            raise QueryError("AsyncDatabase is closed")
        loop = asyncio.get_running_loop()
        standing = await loop.run_in_executor(
            None, lambda: self.database.subscribe(sql, options=options, name=name)
        )
        try:
            # Deltas delivered while we read the seed re-arrive as upserts,
            # so the snapshot-then-stream handoff cannot drop a group.
            yield await loop.run_in_executor(
                None, lambda: standing.snapshot().to_rows()
            )
            while True:
                batch = await loop.run_in_executor(None, standing.next_batch)
                if batch is None:
                    break
                yield batch
        finally:
            await loop.run_in_executor(None, standing.close)

    async def gather_many(
        self,
        queries: Iterable,
        *,
        max_concurrency: Optional[int] = None,
        timeout: Optional[float] = None,
        engine: Optional[str] = None,
        return_exceptions: bool = False,
    ) -> List[Union[QueryOutcome, BaseException]]:
        """Run a workload concurrently with bounded concurrency.

        ``queries`` accepts the same shapes as
        :meth:`Database.execute_many` (SQL strings, ``(name, sql)`` pairs,
        objects with ``name``/``sql``).  ``timeout`` applies per query.

        With an admission gate configured, a query rejected by the gate
        (:class:`~repro.errors.AdmissionRejected` — load shedding, expected
        to clear as siblings finish) is retried up to
        :data:`ADMISSION_RETRIES` times with exponential backoff.  The
        retries honor the per-query deadline: backoff never sleeps past the
        remaining budget, re-attempts run with the budget that is left, and
        a query whose budget is exhausted by rejections surfaces the last
        ``AdmissionRejected`` rather than waiting further.

        With ``return_exceptions=False`` (default) the first failure —
        including a per-query ``DeadlineExceeded`` — cancels every sibling
        (in-flight siblings abort mid-execution via their tokens) and
        re-raises; with ``True`` each slot holds its outcome or exception,
        aligned with the input order.
        """
        from repro.errors import AdmissionRejected

        normalized = normalize_queries(queries)
        limit = max_concurrency or self.max_concurrency
        if limit < 1:
            raise QueryError(f"max_concurrency must be at least 1, got {limit}")
        semaphore = asyncio.Semaphore(limit)
        loop = asyncio.get_running_loop()

        async def run_one(name: str, sql: str):
            async with semaphore:
                started = loop.time()
                delay = ADMISSION_BACKOFF_INITIAL
                for attempt in range(ADMISSION_RETRIES + 1):
                    if timeout is None:
                        remaining = None
                    else:
                        # The budget covers the whole admission+execution
                        # span, so retried queries never outlive the
                        # deadline a first-try query would get.
                        remaining = timeout - (loop.time() - started)
                        remaining = timeout if attempt == 0 else remaining
                        if remaining <= 0:
                            raise DeadlineExceeded(
                                f"query {name!r}: {timeout}s budget exhausted "
                                f"while retrying admission"
                            )
                    try:
                        return await self.execute(
                            sql,
                            name=name,
                            options=ExecOptions(timeout=remaining, engine=engine),
                        )
                    except AdmissionRejected:
                        if attempt == ADMISSION_RETRIES:
                            raise
                        if remaining is not None and delay >= remaining:
                            raise  # no budget left to wait out the gate
                        await asyncio.sleep(delay)
                        delay = min(delay * 2, ADMISSION_BACKOFF_MAX)

        tasks = [
            asyncio.create_task(run_one(name, sql), name=f"repro-serve-{name}")
            for name, sql in normalized
        ]
        try:
            return await asyncio.gather(*tasks, return_exceptions=return_exceptions)
        except BaseException:
            # One query failed (or the caller was cancelled): tear the
            # siblings down before surfacing the error, so no stray query
            # keeps burning worker threads in the background.
            for task in tasks:
                task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)
            raise
