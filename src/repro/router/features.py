"""Per-query feature extraction for the routing policy.

Everything the router decides from is already computed on the hot path: the
planner's :class:`~repro.query.planner.LogicalQuery`, the optimizer's
:class:`~repro.optimizer.binary_plan.BinaryPlan` (whose ``estimated_cost``
the DP search produced anyway), and the session's
:class:`~repro.optimizer.statistics.StatisticsCache` (per-table statistics
memoized across the workload).  Extraction therefore adds no table scans of
its own — a cold statistics cache pays one analysis per *base table*, the
same price ``optimize_query`` already charges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.optimizer.binary_plan import BinaryPlan
from repro.optimizer.statistics import StatisticsCache, collect_statistics
from repro.query.hypergraph import Hypergraph
from repro.query.planner import LogicalQuery

#: Atom-count cut between "small" and "large" shape buckets.
SMALL_ATOMS = 3
#: Input-row cut between "small" and "large" shape buckets (total rows).
SMALL_ROWS = 10_000


@dataclass(frozen=True)
class QueryFeatures:
    """The feature vector one routing decision is made from."""

    #: Number of atoms (relations) in the conjunctive join.
    atoms: int
    #: Sum of the atoms' base-table row counts.
    total_rows: int
    #: Largest single atom row count.
    max_rows: int
    #: The join-order optimizer's cost estimate for the chosen binary plan.
    estimated_cost: float
    #: ``"acyclic"`` or ``"cyclic"`` (GYO reduction of the query hypergraph).
    shape: str
    #: Whether the SELECT list aggregates (COUNT/SUM/... or GROUP BY).
    aggregate: bool
    #: Whether the cheapest sink is selective (count-only output).
    count_only: bool
    #: Content fingerprints of the input tables (cache-warmth signal).
    fingerprints: Tuple[str, ...] = ()

    def shape_bucket(self) -> str:
        """The coarse bucket feedback is keyed on, e.g. ``"cyclic:small:agg"``.

        Buckets trade precision for sample efficiency: a handful of completed
        queries per bucket is enough to rank engines, and queries of the same
        shape/size class genuinely prefer the same engine (the paper's
        cyclic-vs-acyclic split is the dominant axis).
        """
        size = (
            "small"
            if self.atoms <= SMALL_ATOMS and self.total_rows <= SMALL_ROWS
            else "large"
        )
        kind = "agg" if self.aggregate else "rows"
        return f"{self.shape}:{size}:{kind}"

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready view (fingerprints summarized, not dumped)."""
        return {
            "atoms": self.atoms,
            "total_rows": self.total_rows,
            "max_rows": self.max_rows,
            "estimated_cost": self.estimated_cost,
            "shape": self.shape,
            "aggregate": self.aggregate,
            "count_only": self.count_only,
            "bucket": self.shape_bucket(),
        }


def extract_features(
    logical: LogicalQuery,
    binary_plan: BinaryPlan,
    statistics_cache: Optional[StatisticsCache] = None,
) -> QueryFeatures:
    """Build the feature vector for one planned query."""
    query = logical.query
    if statistics_cache is not None:
        statistics = statistics_cache.for_query(query)
    else:
        statistics = collect_statistics(query)
    row_counts = [stats.row_count for stats in statistics.values()]
    count_only = (
        not logical.select_star
        and bool(logical.select_items)
        and all(
            item.function == "COUNT" and item.variable is None
            for item in logical.select_items
        )
        and not logical.group_by
        and not logical.residual_predicates
    )
    return QueryFeatures(
        atoms=len(query.atoms),
        total_rows=sum(row_counts),
        max_rows=max(row_counts, default=0),
        estimated_cost=float(binary_plan.estimated_cost),
        shape="acyclic" if Hypergraph.of_query(query).is_acyclic() else "cyclic",
        aggregate=logical.has_aggregates() or bool(logical.group_by),
        count_only=count_only,
        fingerprints=tuple(
            sorted(atom.table.fingerprint() for atom in query.atoms)
        ),
    )
