"""The routing policy: per-query engine and worker-count selection.

:class:`QueryRouter` decides in two regimes:

* **cold** — no completed queries in the feature bucket yet: route on the
  optimizer's statistics alone.  Cyclic queries go to Free Join (the
  worst-case-optimal guarantee is exactly what cycles need); small acyclic
  count-only probes go to the binary hash join (pipelined, no trie build);
  everything else goes to Free Join, the paper's engine that subsumes both.
* **warm** — the bucket has observations in the
  :class:`~repro.router.feedback.FeedbackStore`: pick the engine with the
  lowest observed EWMA wall-clock, with seeded epsilon-greedy exploration
  (least-observed engine first) so the store keeps learning about the
  engines it is not currently preferring.  A fixed seed makes the whole
  decision sequence deterministic — same queries in, same routes out.

Worker count is chosen from input size (small inputs stay serial: task
decomposition costs more than it buys below the process-input threshold)
and cache warmth (a query whose table fingerprints were all seen before
hits the worker-side context caches, so parallelism engages at half the
threshold).
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import QueryError
from repro.optimizer.binary_plan import BinaryPlan
from repro.optimizer.statistics import StatisticsCache
from repro.query.planner import LogicalQuery
from repro.router.features import QueryFeatures, extract_features
from repro.router.feedback import FeedbackStore

#: Engines the router chooses between (mirrors the session's registry).
ROUTABLE_ENGINES = ("freejoin", "binary", "generic")
#: Below this many total input rows a query stays serial regardless of the
#: session's parallelism (matches the scheduler's process-input threshold).
PARALLEL_ROW_THRESHOLD = 20_000
#: Default exploration rate of the warm path.
DEFAULT_EXPLORE = 0.1


@dataclass(frozen=True)
class RoutingDecision:
    """One routing decision, reported under ``RunReport.details["router"]``."""

    engine: str
    parallelism: int
    #: ``"cold"`` (statistics-only), ``"warm"`` (feedback argmin) or
    #: ``"explore"`` (epsilon-greedy probe of a less-observed engine).
    reason: str
    bucket: str
    features: QueryFeatures
    #: The feedback EWMA for the chosen engine, when one exists.
    expected_seconds: Optional[float] = None
    #: Fraction of the query's table fingerprints seen by earlier routed
    #: queries (1.0 = every input table previously routed through).
    warm_fraction: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "engine": self.engine,
            "parallelism": self.parallelism,
            "reason": self.reason,
            "bucket": self.bucket,
            "warm_fraction": self.warm_fraction,
            "features": self.features.as_dict(),
        }
        if self.expected_seconds is not None:
            record["expected_seconds"] = self.expected_seconds
        return record


@dataclass
class RouterTelemetry:
    """Counters of routing activity (JSON-ready via ``as_dict``)."""

    routed: int = 0
    by_reason: Dict[str, int] = field(default_factory=dict)
    by_engine: Dict[str, int] = field(default_factory=dict)
    observed: int = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "routed": self.routed,
            "by_reason": dict(self.by_reason),
            "by_engine": dict(self.by_engine),
            "observed": self.observed,
        }


class QueryRouter:
    """Chooses engine and worker count per query; learns from completions.

    Thread-safe and shareable: the async serving layer hands one router to
    every per-query session so observations accumulate in one place, the
    way the statistics cache is shared.

    Parameters
    ----------
    feedback:
        The runtime-feedback store.  A fresh (empty) store means every
        bucket starts cold.
    explore:
        Probability of probing a non-preferred engine on the warm path.
        ``0.0`` disables exploration (pure argmin — fully deterministic
        regardless of seed).
    seed:
        Seed of the exploration RNG.  Decisions are deterministic given the
        seed and the query sequence.
    parallel_row_threshold:
        Total input rows above which the routed query uses the session's
        parallel workers.
    """

    def __init__(
        self,
        feedback: Optional[FeedbackStore] = None,
        *,
        explore: float = DEFAULT_EXPLORE,
        seed: int = 0,
        parallel_row_threshold: int = PARALLEL_ROW_THRESHOLD,
    ) -> None:
        if not 0.0 <= explore <= 1.0:
            raise QueryError(f"explore must be in [0, 1], got {explore}")
        self.feedback = feedback if feedback is not None else FeedbackStore()
        self.explore = explore
        self.parallel_row_threshold = parallel_row_threshold
        self._rng = random.Random(seed)
        self._seen_fingerprints: set = set()
        self._telemetry = RouterTelemetry()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #

    def route(
        self,
        logical: LogicalQuery,
        binary_plan: BinaryPlan,
        statistics_cache: Optional[StatisticsCache] = None,
        max_workers: int = 1,
    ) -> RoutingDecision:
        """Decide engine and worker count for one planned query."""
        features = extract_features(logical, binary_plan, statistics_cache)
        bucket = features.shape_bucket()
        with self._lock:
            warm_fraction = self._warm_fraction(features.fingerprints)
            engine, reason = self._choose_engine(features, bucket)
            parallelism = self._choose_workers(features, warm_fraction, max_workers)
            self._telemetry.routed += 1
            self._telemetry.by_reason[reason] = (
                self._telemetry.by_reason.get(reason, 0) + 1
            )
            self._telemetry.by_engine[engine] = (
                self._telemetry.by_engine.get(engine, 0) + 1
            )
        return RoutingDecision(
            engine=engine,
            parallelism=parallelism,
            reason=reason,
            bucket=bucket,
            features=features,
            expected_seconds=self.feedback.expected_seconds(bucket, engine),
            warm_fraction=warm_fraction,
        )

    def observe(self, decision: RoutingDecision, seconds: float) -> None:
        """Feed one completed query back into the store."""
        self.feedback.record(decision.bucket, decision.engine, seconds)
        with self._lock:
            self._seen_fingerprints.update(decision.features.fingerprints)
            self._telemetry.observed += 1

    def telemetry(self) -> Dict[str, object]:
        """JSON-ready counters of routing activity."""
        with self._lock:
            return self._telemetry.as_dict()

    # ------------------------------------------------------------------ #
    # The two decision axes
    # ------------------------------------------------------------------ #

    def _choose_engine(
        self, features: QueryFeatures, bucket: str
    ) -> Tuple[str, str]:
        seen = self.feedback.engines_seen(bucket)
        if seen:
            if self.explore > 0.0 and self._rng.random() < self.explore:
                return self._least_observed(bucket), "explore"
            best = self.feedback.best_engine(bucket)
            if best is not None:
                return best, "warm"
        return self._cold_choice(features), "cold"

    def _least_observed(self, bucket: str) -> str:
        """The engine with the fewest observations (unseen engines first)."""
        return min(
            ROUTABLE_ENGINES,
            key=lambda engine: (self.feedback.observations(bucket, engine), engine),
        )

    @staticmethod
    def _cold_choice(features: QueryFeatures) -> str:
        """Statistics-only heuristic, mirroring the paper's engine split.

        Cyclic joins get Free Join (worst-case-optimal plans avoid the
        binary plan's blowup on cycles — the clover/triangle analysis).
        Small acyclic count-only probes get the binary hash join: no trie
        build, pipelined probes, and the COUNT sink skips materialization.
        Everything else gets Free Join, which subsumes binary plans on
        acyclic queries at equal asymptotics.  Generic Join — the eager
        tuple-at-a-time baseline — is never the cold pick; the warm path
        can still reach it through exploration if it ever wins a bucket.
        """
        if features.shape == "cyclic":
            return "freejoin"
        if features.atoms <= 3 and features.count_only:
            return "binary"
        return "freejoin"

    def _choose_workers(
        self, features: QueryFeatures, warm_fraction: float, max_workers: int
    ) -> int:
        if max_workers <= 1:
            return 1
        threshold = self.parallel_row_threshold
        if warm_fraction >= 1.0:
            # Fully warm inputs hit the worker-side context caches (keyed on
            # these same fingerprints), so the per-worker setup the threshold
            # protects against is already paid.
            threshold //= 2
        return max_workers if features.total_rows >= threshold else 1

    def _warm_fraction(self, fingerprints: Tuple[str, ...]) -> float:
        if not fingerprints:
            return 0.0
        seen = sum(1 for fp in fingerprints if fp in self._seen_fingerprints)
        return seen / len(fingerprints)

    # Locks do not pickle; a router copied into a forked/spawned workload
    # worker re-creates its own (observations made there stay there).
    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()
