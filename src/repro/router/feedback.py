"""Runtime feedback for the router: EWMA wall-clock per engine x bucket.

The cold-start heuristics in :mod:`repro.router.policy` only know what the
optimizer estimates; this store knows what actually happened.  Every
completed query contributes its wall-clock to an exponentially-weighted
moving average keyed by ``(shape bucket, engine)``, so the router's warm
path can rank engines by *observed* latency — the BRAD-style forward-model
loop, scaled down to a per-process store.

The store is JSON round-trippable (:meth:`FeedbackStore.to_json` /
:meth:`FeedbackStore.from_json`, or :meth:`save` / :meth:`load` for files),
so a serving process can persist what it learned and a restart starts warm.
"""

from __future__ import annotations

import json
import threading
from typing import Dict, Optional, Tuple

from repro.errors import QueryError

#: Default EWMA smoothing factor: one observation moves the average 30% of
#: the way to the new value — reactive to drift, robust to one outlier.
DEFAULT_ALPHA = 0.3


class FeedbackStore:
    """Observed wall-clock per ``(bucket, engine)``, as an EWMA.

    Thread-safe: the serving layer records observations from many worker
    threads.  Pickle drops the lock (the statistics-cache pattern), so the
    store can ride into forked workload workers; observations made inside a
    worker *process* stay in that process.
    """

    def __init__(self, alpha: float = DEFAULT_ALPHA) -> None:
        if not 0.0 < alpha <= 1.0:
            raise QueryError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        # (bucket, engine) -> (ewma_seconds, observation_count)
        self._entries: Dict[Tuple[str, str], Tuple[float, int]] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Recording and querying
    # ------------------------------------------------------------------ #

    def record(self, bucket: str, engine: str, seconds: float) -> None:
        """Fold one completed query's wall-clock into the store."""
        if seconds < 0.0:
            raise QueryError(f"cannot record negative seconds ({seconds})")
        with self._lock:
            entry = self._entries.get((bucket, engine))
            if entry is None:
                self._entries[(bucket, engine)] = (seconds, 1)
            else:
                ewma, count = entry
                ewma += self.alpha * (seconds - ewma)
                self._entries[(bucket, engine)] = (ewma, count + 1)

    def expected_seconds(self, bucket: str, engine: str) -> Optional[float]:
        """Current EWMA for an engine in a bucket, or ``None`` if unseen."""
        entry = self._entries.get((bucket, engine))
        return entry[0] if entry is not None else None

    def observations(self, bucket: str, engine: str) -> int:
        """How many completions have been recorded for this pair."""
        entry = self._entries.get((bucket, engine))
        return entry[1] if entry is not None else 0

    def best_engine(self, bucket: str) -> Optional[str]:
        """The engine with the lowest EWMA in a bucket (ties: name order).

        Returns ``None`` when the bucket has no observations at all.
        """
        with self._lock:
            candidates = sorted(
                (ewma, engine)
                for (b, engine), (ewma, _) in self._entries.items()
                if b == bucket
            )
        return candidates[0][1] if candidates else None

    def engines_seen(self, bucket: str) -> Tuple[str, ...]:
        """Engines with at least one observation in a bucket, sorted."""
        with self._lock:
            return tuple(
                sorted(engine for (b, engine) in self._entries if b == bucket)
            )

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready snapshot of every entry."""
        with self._lock:
            return {
                "alpha": self.alpha,
                "entries": [
                    {
                        "bucket": bucket,
                        "engine": engine,
                        "ewma_seconds": ewma,
                        "observations": count,
                    }
                    for (bucket, engine), (ewma, count) in sorted(
                        self._entries.items()
                    )
                ],
            }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FeedbackStore":
        store = cls(alpha=float(payload.get("alpha", DEFAULT_ALPHA)))
        for entry in payload.get("entries", []):
            store._entries[(str(entry["bucket"]), str(entry["engine"]))] = (
                float(entry["ewma_seconds"]),
                int(entry["observations"]),
            )
        return store

    @classmethod
    def from_json(cls, text: str) -> "FeedbackStore":
        return cls.from_dict(json.loads(text))

    def save(self, path) -> None:
        """Persist the store to a JSON file."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    @classmethod
    def load(cls, path) -> "FeedbackStore":
        """Restore a store from a JSON file written by :meth:`save`."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    # Locks do not pickle; forked/spawned workload workers get a copy that
    # recreates its own lock (same pattern as StatisticsCache).
    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()
