"""Admission control for the serving layer: reject fast, keep p95 bounded.

Without a gate, a burst of heavy queries degrades the whole server the slow
way: every request is accepted, every request queues behind the burst, and
every request times out after burning its full deadline.  The
:class:`AdmissionGate` inverts that: requests beyond what the server can
absorb are rejected *immediately* with a typed
:class:`~repro.errors.AdmissionRejected`, so clients can retry elsewhere
(or back off) while admitted queries keep their latency.

Three independent limits, checked in order at :meth:`AdmissionGate.admit`:

* **token bucket** — a sustained-rate cap (``rate`` admissions/second,
  ``burst`` of headroom).  Absorbs short bursts, sheds sustained overload.
* **per-class concurrency** — ``point`` and ``analytic`` queries each have
  their own outstanding-query limit, so a flood of analytic scans can never
  starve cheap point lookups of admission slots (and vice versa).
* **bounded outstanding total** — the hard cap on admitted-but-unfinished
  queries (the serving pool's queue depth); beyond it the server is not
  keeping up and further queueing only converts rejections into timeouts.

The gate is a non-blocking state machine: ``admit`` either returns an
:class:`AdmissionTicket` (release it in a ``finally``) or raises.  Waiting
is the *executor's* job — admitted queries queue in the serving pool, whose
depth this gate bounds.  :meth:`AdmissionGate.suggest_workers` closes the
loop on worker sizing: when the gate sees queue depth building, it shrinks
per-query parallelism so concurrent queries stop fighting over the same
cores.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.errors import AdmissionRejected, QueryError

#: The two admission classes.
POINT = "point"
ANALYTIC = "analytic"
CLASSES = (POINT, ANALYTIC)


def classify_sql(sql: str) -> str:
    """Cheap point/analytic split, no planner required.

    ``analytic``: grouped aggregation or a join of three or more relations —
    the shapes whose work scales with intermediate sizes.  Everything else
    (single/two-table lookups, global aggregates over small joins) is
    ``point``.  Callers that know better pass ``query_class=`` explicitly;
    this is only the default for the serving front door, where classifying
    must cost less than planning.
    """
    upper = sql.upper()
    if "GROUP BY" in upper:
        return ANALYTIC
    from_index = upper.find("FROM")
    if from_index >= 0:
        clause = upper[from_index + 4:]
        for terminator in (" WHERE ", " GROUP ", " ORDER ", " LIMIT "):
            cut = clause.find(terminator)
            if cut >= 0:
                clause = clause[:cut]
        if clause.count(",") >= 2:
            return ANALYTIC
    return POINT


@dataclass(frozen=True)
class AdmissionTicket:
    """Proof of admission; hand it back via :meth:`AdmissionGate.release`."""

    query_class: str
    admitted_at: float
    #: Outstanding queries (all classes) at admission time, this one included.
    depth_at_admit: int


class AdmissionGate:
    """Token-bucket + per-class bounded admission; non-blocking and typed.

    Parameters
    ----------
    point_limit / analytic_limit:
        Maximum outstanding (admitted, not yet released) queries per class.
    max_outstanding:
        Hard cap on outstanding queries across both classes; defaults to
        ``point_limit + analytic_limit``.
    rate:
        Sustained admissions per second for the token bucket; ``None``
        disables rate limiting (concurrency limits still apply).
    burst:
        Bucket capacity — how many admissions can arrive back-to-back
        before the rate applies.  Defaults to ``rate`` (one second of
        headroom), minimum 1.
    clock:
        Monotonic time source; injectable for deterministic tests.
    """

    def __init__(
        self,
        *,
        point_limit: int = 8,
        analytic_limit: int = 4,
        max_outstanding: Optional[int] = None,
        rate: Optional[float] = None,
        burst: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if point_limit < 1 or analytic_limit < 1:
            raise QueryError("per-class admission limits must be at least 1")
        if rate is not None and rate <= 0.0:
            raise QueryError(f"rate must be positive, got {rate}")
        self.limits = {POINT: point_limit, ANALYTIC: analytic_limit}
        self.max_outstanding = (
            max_outstanding
            if max_outstanding is not None
            else point_limit + analytic_limit
        )
        if self.max_outstanding < 1:
            raise QueryError("max_outstanding must be at least 1")
        self.rate = rate
        self.burst = max(1.0, burst if burst is not None else (rate or 1.0))
        self._clock = clock
        self._tokens = self.burst
        self._refilled_at = clock()
        self._outstanding: Dict[str, int] = {POINT: 0, ANALYTIC: 0}
        self._lock = threading.Lock()
        # Telemetry.
        self._admitted: Dict[str, int] = {POINT: 0, ANALYTIC: 0}
        self._rejected: Dict[str, int] = {"rate": 0, "class_limit": 0, "queue_full": 0}
        self._depth_peak = 0

    # ------------------------------------------------------------------ #
    # The gate
    # ------------------------------------------------------------------ #

    def admit(self, query_class: str = POINT) -> AdmissionTicket:
        """Admit one query or raise :class:`AdmissionRejected` immediately."""
        if query_class not in CLASSES:
            raise QueryError(
                f"unknown admission class {query_class!r}; choose from {CLASSES}"
            )
        now = self._clock()
        with self._lock:
            self._refill(now)
            if self.rate is not None and self._tokens < 1.0:
                self._rejected["rate"] += 1
                raise AdmissionRejected(
                    f"admission rate exceeded ({self.rate}/s, burst {self.burst})",
                    reason="rate",
                    query_class=query_class,
                )
            depth = sum(self._outstanding.values())
            if depth >= self.max_outstanding:
                self._rejected["queue_full"] += 1
                raise AdmissionRejected(
                    f"server saturated: {depth} queries outstanding "
                    f"(max {self.max_outstanding})",
                    reason="queue_full",
                    query_class=query_class,
                )
            if self._outstanding[query_class] >= self.limits[query_class]:
                self._rejected["class_limit"] += 1
                raise AdmissionRejected(
                    f"{query_class} class at its concurrency limit "
                    f"({self.limits[query_class]})",
                    reason="class_limit",
                    query_class=query_class,
                )
            if self.rate is not None:
                self._tokens -= 1.0
            self._outstanding[query_class] += 1
            self._admitted[query_class] += 1
            depth += 1
            self._depth_peak = max(self._depth_peak, depth)
            return AdmissionTicket(
                query_class=query_class, admitted_at=now, depth_at_admit=depth
            )

    def release(self, ticket: AdmissionTicket) -> None:
        """Return a ticket; always call from a ``finally``."""
        with self._lock:
            if self._outstanding[ticket.query_class] <= 0:
                raise QueryError(
                    f"release without a matching admit for class "
                    f"{ticket.query_class!r}"
                )
            self._outstanding[ticket.query_class] -= 1

    def _refill(self, now: float) -> None:
        if self.rate is None:
            return
        elapsed = max(0.0, now - self._refilled_at)
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._refilled_at = now

    # ------------------------------------------------------------------ #
    # Load-aware sizing and telemetry
    # ------------------------------------------------------------------ #

    def depth(self) -> int:
        """Outstanding admitted queries across both classes."""
        with self._lock:
            return sum(self._outstanding.values())

    def suggest_workers(self, base: int) -> int:
        """Queue-depth-aware per-query worker count.

        At depth 1 a query may use the session's full ``base`` workers; as
        concurrent queries stack up, each gets a proportionally smaller
        slice (never below 1), so intra-query parallelism stops multiplying
        under load instead of thrashing the same cores.
        """
        if base <= 1:
            return 1
        return max(1, base // max(1, self.depth()))

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready admission telemetry."""
        with self._lock:
            return {
                "outstanding": dict(self._outstanding),
                "depth_peak": self._depth_peak,
                "admitted": dict(self._admitted),
                "rejected": dict(self._rejected),
                "limits": dict(self.limits),
                "max_outstanding": self.max_outstanding,
                "rate": self.rate,
                "burst": self.burst,
                "tokens": self._tokens if self.rate is not None else None,
            }
