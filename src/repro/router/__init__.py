"""Front-door query routing and admission control (the serving brain).

Five PRs of machinery — three engines, a work-stealing scheduler, streaming
sinks, an async serving layer — still left every caller hand-picking
``engine=``/``parallelism=`` per query.  This package closes the loop the way
learned routers like BRAD do: decide *per query* from what the system already
knows, and keep deciding better as observations accumulate.

* :mod:`repro.router.features` — the per-query feature vector: estimated
  cardinalities (from :mod:`repro.optimizer.statistics`), the optimizer's
  cost estimate, query shape (acyclic/cyclic via GYO reduction), output
  selectivity, and table fingerprints (for cache-warmth detection).
* :mod:`repro.router.feedback` — :class:`FeedbackStore`, an EWMA of observed
  wall-clock per ``engine x shape-bucket``, persisted/restorable as JSON so
  a restarted server keeps its learned preferences.
* :mod:`repro.router.policy` — :class:`QueryRouter`: statistics-only
  heuristics cold, feedback-driven argmin warm (with seeded epsilon-greedy
  exploration so decisions stay deterministic under a fixed seed), plus
  worker-count selection.  Opt in per session or per query with
  ``engine="auto"``; every routed run reports its decision under
  ``RunReport.details["router"]``.
* :mod:`repro.router.admission` — :class:`AdmissionGate`: a token-bucket /
  bounded-outstanding admission controller with per-class (point vs.
  analytic) concurrency limits and queue-depth-aware worker sizing.  Under
  burst it rejects fast with :class:`~repro.errors.AdmissionRejected`
  instead of letting every query time out slowly, so tail latency stays
  bounded; :class:`~repro.serve.async_db.AsyncDatabase` accepts a gate via
  ``admission=``.
"""

from repro.router.admission import AdmissionGate, AdmissionTicket, classify_sql
from repro.router.features import QueryFeatures, extract_features
from repro.router.feedback import FeedbackStore
from repro.router.policy import QueryRouter, RoutingDecision

__all__ = [
    "AdmissionGate",
    "AdmissionTicket",
    "FeedbackStore",
    "QueryFeatures",
    "QueryRouter",
    "RoutingDecision",
    "classify_sql",
    "extract_features",
]
