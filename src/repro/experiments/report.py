"""Rendering measurement records as the tables/series the paper reports."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Sequence

from repro.experiments.harness import Measurement, pivot_by_engine


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean; the paper reports average speedups this way."""
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def speedups(
    measurements: Sequence[Measurement],
    baseline: str,
    challenger: str,
) -> Dict[str, float]:
    """Per-query speedup of ``challenger`` over ``baseline`` (>1 = faster)."""
    table = pivot_by_engine(measurements)
    result: Dict[str, float] = {}
    for query, by_engine in table.items():
        if baseline in by_engine and challenger in by_engine:
            base = by_engine[baseline].seconds
            other = by_engine[challenger].seconds
            if other > 0:
                result[query] = base / other
    return result


def speedup_summary(
    measurements: Sequence[Measurement],
    baseline: str,
    challenger: str,
) -> Dict[str, float]:
    """Geomean/max/min speedup of ``challenger`` over ``baseline``."""
    ratios = list(speedups(measurements, baseline, challenger).values())
    if not ratios:
        return {"geomean": 0.0, "max": 0.0, "min": 0.0, "count": 0}
    return {
        "geomean": geometric_mean(ratios),
        "max": max(ratios),
        "min": min(ratios),
        "count": len(ratios),
    }


def format_records(
    records: Iterable[Mapping[str, object]],
    columns: Sequence[str],
    floats: int = 4,
) -> str:
    """Render dict records as an aligned plain-text table."""
    rows: List[List[str]] = []
    for record in records:
        row = []
        for column in columns:
            value = record.get(column, "")
            if isinstance(value, float):
                row.append(f"{value:.{floats}f}")
            else:
                row.append(str(value))
        rows.append(row)
    widths = [
        max(len(column), *(len(row[i]) for row in rows)) if rows else len(column)
        for i, column in enumerate(columns)
    ]
    header = "  ".join(column.ljust(widths[i]) for i, column in enumerate(columns))
    separator = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = [
        "  ".join(row[i].ljust(widths[i]) for i in range(len(columns))) for row in rows
    ]
    return "\n".join([header, separator] + body)


def format_measurements(measurements: Sequence[Measurement]) -> str:
    """Render raw measurements as a text table."""
    return format_records(
        [m.as_record() for m in measurements],
        columns=[
            "workload", "query", "engine", "variant", "category",
            "seconds", "build_seconds", "join_seconds", "output_rows",
        ],
    )


def format_scatter(
    measurements: Sequence[Measurement],
    baseline: str,
    challengers: Sequence[str],
) -> str:
    """Render a Figure-14-style series: baseline time vs. challenger times."""
    table = pivot_by_engine(measurements)
    records = []
    for query in sorted(table):
        by_engine = table[query]
        if baseline not in by_engine:
            continue
        record: Dict[str, object] = {
            "query": query,
            "category": by_engine[baseline].category,
            f"{baseline}_s": by_engine[baseline].seconds,
        }
        for challenger in challengers:
            if challenger in by_engine:
                record[f"{challenger}_s"] = by_engine[challenger].seconds
                base = by_engine[baseline].seconds
                record[f"{challenger}_speedup"] = (
                    base / by_engine[challenger].seconds
                    if by_engine[challenger].seconds > 0
                    else float("inf")
                )
        records.append(record)
    columns = ["query", "category", f"{baseline}_s"]
    for challenger in challengers:
        columns += [f"{challenger}_s", f"{challenger}_speedup"]
    return format_records(records, columns)


def summarize_headline(
    measurements: Sequence[Measurement],
    baseline: str = "binary",
    challenger: str = "freejoin",
    reference: str = "generic",
) -> Dict[str, Dict[str, float]]:
    """The paper's headline numbers: Free Join vs. binary join and Generic Join.

    Returns per-category (acyclic/cyclic/all) summaries of the challenger's
    speedup over both the baseline and the reference engine.
    """
    by_category: Dict[str, List[Measurement]] = {"all": list(measurements)}
    for measurement in measurements:
        by_category.setdefault(measurement.category or "uncategorized", []).append(
            measurement
        )
    summary: Dict[str, Dict[str, float]] = {}
    for category, subset in by_category.items():
        versus_baseline = speedup_summary(subset, baseline, challenger)
        versus_reference = speedup_summary(subset, reference, challenger)
        summary[category] = {
            f"vs_{baseline}_geomean": versus_baseline["geomean"],
            f"vs_{baseline}_max": versus_baseline["max"],
            f"vs_{baseline}_min": versus_baseline["min"],
            f"vs_{reference}_geomean": versus_reference["geomean"],
            f"vs_{reference}_max": versus_reference["max"],
            f"vs_{reference}_min": versus_reference["min"],
            "queries": versus_baseline["count"],
        }
    return summary


def format_headline(summary: Mapping[str, Mapping[str, float]]) -> str:
    """Render the headline summary as text."""
    records = []
    for category in sorted(summary):
        record = {"category": category}
        record.update(summary[category])
        records.append(record)
    columns = ["category"] + [c for c in records[0] if c != "category"] if records else []
    return format_records(records, columns, floats=2)
