"""Timing harness shared by all experiment drivers and benchmarks.

Measured time is the engine-reported join time (build + join + intermediate
materialization), not the end-to-end wall clock: exactly as in the paper,
time spent in selection pushdown, SQL planning and the final aggregation is
excluded (Section 5.1, "we exclude the time spent in selection and
aggregation").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.engine import FreeJoinOptions
from repro.engine.options import ExecOptions
from repro.engine.session import Database
from repro.query.hypergraph import classify_query
from repro.storage.catalog import Catalog
from repro.workloads.job import BenchmarkQuery


@dataclass
class Measurement:
    """One timed execution of one query on one engine configuration."""

    workload: str
    query: str
    engine: str
    variant: str
    seconds: float
    build_seconds: float
    join_seconds: float
    output_rows: int
    category: str = ""
    scale: float = 1.0

    def as_record(self) -> Dict[str, object]:
        """Plain-dict view, convenient for report formatting."""
        return {
            "workload": self.workload,
            "query": self.query,
            "engine": self.engine,
            "variant": self.variant,
            "seconds": self.seconds,
            "build_seconds": self.build_seconds,
            "join_seconds": self.join_seconds,
            "output_rows": self.output_rows,
            "category": self.category,
            "scale": self.scale,
        }


def run_query(
    database: Database,
    query: BenchmarkQuery,
    engine: str,
    workload: str = "",
    variant: str = "default",
    bad_estimates: bool = False,
    freejoin_options: Optional[FreeJoinOptions] = None,
    repeats: int = 1,
    scale: float = 1.0,
) -> Measurement:
    """Execute a benchmark query and return the best-of-``repeats`` timing."""
    best = None
    for _ in range(max(1, repeats)):
        outcome = database.execute(
            query.sql,
            name=query.name,
            options=ExecOptions(
                engine=engine,
                bad_estimates=bad_estimates,
                freejoin_options=freejoin_options,
            ),
        )
        report = outcome.report
        category = query.category or classify_query(outcome.logical.query)
        measurement = Measurement(
            workload=workload,
            query=query.name,
            engine=engine,
            variant=variant,
            seconds=report.total_seconds,
            build_seconds=report.build_seconds,
            join_seconds=report.join_seconds,
            output_rows=outcome.join_result.count(),
            category=category,
            scale=scale,
        )
        if best is None or measurement.seconds < best.seconds:
            best = measurement
    assert best is not None
    return best


def run_suite(
    catalog: Catalog,
    queries: Sequence[BenchmarkQuery],
    engines: Sequence[str],
    workload: str = "",
    variant: str = "default",
    bad_estimates: bool = False,
    freejoin_options: Optional[FreeJoinOptions] = None,
    repeats: int = 1,
    scale: float = 1.0,
    query_names: Optional[Iterable[str]] = None,
) -> List[Measurement]:
    """Run every query of a suite on every engine and collect measurements."""
    database = Database(catalog)
    wanted = set(query_names) if query_names is not None else None
    measurements: List[Measurement] = []
    for query in queries:
        if wanted is not None and query.name not in wanted:
            continue
        for engine in engines:
            measurements.append(
                run_query(
                    database,
                    query,
                    engine,
                    workload=workload,
                    variant=variant,
                    bad_estimates=bad_estimates,
                    freejoin_options=freejoin_options,
                    repeats=repeats,
                    scale=scale,
                )
            )
    return measurements


def pivot_by_engine(measurements: Sequence[Measurement]) -> Dict[str, Dict[str, Measurement]]:
    """Group measurements as ``{query: {engine_or_variant: measurement}}``.

    The key within a query is ``engine`` when all variants are identical, and
    ``engine/variant`` otherwise, so ablation runs of the same engine do not
    collide.
    """
    variants = {m.variant for m in measurements}
    use_variant = len(variants) > 1
    table: Dict[str, Dict[str, Measurement]] = {}
    for measurement in measurements:
        key = (
            f"{measurement.engine}/{measurement.variant}"
            if use_variant
            else measurement.engine
        )
        table.setdefault(measurement.query, {})[key] = measurement
    return table
