"""Cross-engine differential testing of generated workloads.

The same discipline the paper uses to validate Free Join against the binary
and generic join baselines (Section 5), industrialized: every generated
query runs on all three engines × kernels on/off × serial/thread-parallel/
process-parallel (18 configurations), plus an **independent naive reference
executor** that
evaluates the parsed SQL directly — nested-loop joins over row dicts,
dictionary grouping, straight-line HAVING/DISTINCT/ORDER/LIMIT — with no
planner, no kernels, and no shared execution machinery.  The reference is
the oracle: a bug anywhere in the plan/execute stack shows up as a
divergence even when all twelve engine configurations agree with each
other.

Dialect semantics the reference replicates deliberately:

* WHERE equality between columns of *different* aliases is a join-variable
  unification (the planner collapses both columns into one variable), so
  NULL keys match NULL keys — bag semantics over values, not SQL's
  three-valued ``=``.
* Every other predicate — single-alias filters, LEFT JOIN ``ON``
  conditions, residuals — uses expression evaluation, where NULL never
  compares true.
* ORDER BY breaks peer rows by the canonical whole-row key and a LIMIT
  without ORDER BY canonicalizes first (see
  :func:`repro.engine.aggregates.order_rows`), so ordered results compare
  *exactly*, not as bags.

When a query diverges, the built-in shrinker
(:func:`shrink_failing_query`) greedily bisects the AST — dropping joins,
predicates, clauses, IN-list values — re-testing each candidate, until no
smaller query still fails; the minimized SQL is what lands in the CI
artifact.
"""

from __future__ import annotations

import copy
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.datatypes import Row, Value
from repro.engine.options import ExecOptions
from repro.engine.session import Database
from repro.errors import ReproError
from repro.query.expressions import (
    AggregateRef,
    ColumnRef,
    Comparison,
    Expression,
    InList,
    conjuncts,
)
from repro.query.sql import ParsedQuery, SelectItem, parse_sql
from repro.storage.catalog import Catalog
from repro.workloads.generated import GeneratedQuery


# --------------------------------------------------------------------------- #
# Configurations
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class EngineConfig:
    """One execution configuration of the differential matrix.

    ``backend`` selects the parallel worker backend (``"thread"`` or
    ``"process"``) and is only meaningful when ``parallel`` is true — the
    process backend exercises the pickled task-outcome protocol (columnar
    batch forwarding included), which the thread backend cannot.
    """

    engine: str
    kernels: bool
    parallel: bool
    backend: str = "thread"

    def label(self) -> str:
        kernels = "kernels" if self.kernels else "rowpath"
        if not self.parallel:
            parallel = "serial"
        elif self.backend == "process":
            parallel = "proc2"
        else:
            parallel = "thread2"
        return f"{self.engine}/{kernels}/{parallel}"


def default_configs() -> List[EngineConfig]:
    """The full 18-way matrix: 3 engines × kernels × serial/thread2/proc2."""
    configs = []
    for engine in ("freejoin", "binary", "generic"):
        for kernels in (True, False):
            configs.append(EngineConfig(engine, kernels, parallel=False))
            configs.append(EngineConfig(engine, kernels, parallel=True))
            configs.append(
                EngineConfig(engine, kernels, parallel=True, backend="process")
            )
    return configs


@dataclass
class Divergence:
    """One configuration disagreeing with the reference executor."""

    sql: str
    config: str
    expected: List[Row]
    actual: List[Row]
    error: Optional[str] = None
    minimized_sql: Optional[str] = None

    def summary(self) -> str:
        head = f"[{self.config}] {self.minimized_sql or self.sql}"
        if self.error:
            return f"{head}\n  error: {self.error}"
        return (
            f"{head}\n  expected {len(self.expected)} rows, "
            f"got {len(self.actual)}"
        )


@dataclass
class DifferentialReport:
    """Outcome of one differential run."""

    queries_checked: int = 0
    configs: int = 0
    divergences: List[Divergence] = field(default_factory=list)

    def ok(self) -> bool:
        return not self.divergences

    def summary(self) -> str:
        if self.ok():
            return (
                f"differential: {self.queries_checked} queries × "
                f"{self.configs} configs, no divergence"
            )
        lines = [
            f"differential: {len(self.divergences)} divergence(s) over "
            f"{self.queries_checked} queries:"
        ]
        lines.extend(d.summary() for d in self.divergences)
        return "\n".join(lines)


# --------------------------------------------------------------------------- #
# Canonicalization
# --------------------------------------------------------------------------- #


def _normalize(value: Value) -> Value:
    """Collapse float noise to 10 significant digits (fold-order safety)."""
    if isinstance(value, float):
        return float(f"{value:.10g}")
    return value


def _value_key(value: Value):
    if value is None:
        return (0, "")
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return (1, float(value))
    if isinstance(value, str):
        return (2, value)
    return (3, repr(value))


def _row_key(row: Row):
    return tuple(_value_key(value) for value in row) + (repr(row),)


def canonicalize(rows: Sequence[Row], ordered: bool) -> List[Row]:
    """Normalize rows for comparison; sort them unless the query is ordered."""
    normalized = [tuple(_normalize(value) for value in row) for row in rows]
    if ordered:
        return normalized
    return sorted(normalized, key=_row_key)


# --------------------------------------------------------------------------- #
# The naive reference executor
# --------------------------------------------------------------------------- #


def _is_join_equality(expression: Expression) -> bool:
    return (
        isinstance(expression, Comparison)
        and expression.op == "="
        and isinstance(expression.left, ColumnRef)
        and isinstance(expression.right, ColumnRef)
        and expression.left.aliases() != expression.right.aliases()
    )


def reference_rows(catalog: Catalog, parsed: ParsedQuery) -> List[Row]:
    """Evaluate a parsed query naively, with no planner and no engines."""
    core = [item for item in parsed.from_items if item.join_type == "inner"]
    outer = [item for item in parsed.from_items if item.join_type == "left"]

    where = conjuncts(parsed.where)
    joins = [c for c in where if _is_join_equality(c)]
    filters = [c for c in where if not _is_join_equality(c)]

    # Nested-loop join over row environments, applying each conjunct as soon
    # as every alias it references is bound.
    envs: List[Dict[str, Value]] = [{}]
    bound: set = set()
    pending_joins = list(joins)
    pending_filters = list(filters)
    for item in core:
        table = catalog.get(item.table)
        columns = [f"{item.alias}.{name}" for name in table.column_names]
        rows = table.to_rows()
        bound.add(item.alias)
        ready_joins = [c for c in pending_joins if c.aliases() <= bound]
        ready_filters = [c for c in pending_filters if c.aliases() <= bound]
        pending_joins = [c for c in pending_joins if c.aliases() - bound]
        pending_filters = [c for c in pending_filters if c.aliases() - bound]
        extended: List[Dict[str, Value]] = []
        for env in envs:
            for row in rows:
                candidate = dict(env)
                candidate.update(zip(columns, row))
                # Join-variable unification: raw value equality, NULL included.
                if any(
                    candidate[c.left.qualified_name] != candidate[c.right.qualified_name]
                    for c in ready_joins
                ):
                    continue
                if any(not c.evaluate(candidate) for c in ready_filters):
                    continue
                extended.append(candidate)
        envs = extended
    for conjunct in pending_filters:  # constant predicates over no aliases
        envs = [env for env in envs if conjunct.evaluate(env)]

    for item in outer:
        table = catalog.get(item.table)
        columns = [f"{item.alias}.{name}" for name in table.column_names]
        rows = table.to_rows()
        on = conjuncts(item.on)
        extended = []
        for env in envs:
            matched = False
            for row in rows:
                candidate = dict(env)
                candidate.update(zip(columns, row))
                if all(c.evaluate(candidate) for c in on):
                    matched = True
                    extended.append(candidate)
            if not matched:
                padded = dict(env)
                padded.update({column: None for column in columns})
                extended.append(padded)
        envs = extended

    star_keys = [
        f"{item.alias}.{name}"
        for item in list(core) + list(outer)
        for name in catalog.get(item.table).column_names
    ]
    output = _reference_output(parsed, star_keys, envs)

    if parsed.distinct:
        output = list(dict.fromkeys(output))
    if parsed.order_by:
        positions = _order_positions(parsed, star_keys)
        output = sorted(output, key=_row_key)
        for order_item, position in reversed(list(zip(parsed.order_by, positions))):
            output = sorted(
                output,
                key=lambda row, p=position: _value_key(row[p]),
                reverse=order_item.descending,
            )
    if parsed.limit is not None:
        if not parsed.order_by:
            output = sorted(output, key=_row_key)
        output = output[: parsed.limit]
    return output


def _reference_output(
    parsed: ParsedQuery,
    star_keys: List[str],
    envs: List[Dict[str, Value]],
) -> List[Row]:
    if parsed.select_star:
        return [tuple(env[key] for key in star_keys) for env in envs]

    if not any(item.function for item in parsed.select_items):
        return [
            tuple(env[item.column] for item in parsed.select_items) for env in envs
        ]

    # Aggregation: dictionary grouping over the group-by key.
    group_columns = list(parsed.group_by)
    groups: Dict[Row, List[Dict[str, Value]]] = {}
    for env in envs:
        key = tuple(env[column] for column in group_columns)
        groups.setdefault(key, []).append(env)
    if not groups and not group_columns:
        groups[()] = []

    rows: List[Row] = []
    for key in groups:
        members = groups[key]
        row: List[Value] = []
        aggregate_env: Dict[str, Value] = {}
        for item in parsed.select_items:
            if item.function is None:
                row.append(key[group_columns.index(item.column)])
                continue
            value = _reference_aggregate(item.function, item.column, members)
            row.append(value)
            aggregate_env[AggregateRef(item.function, item.column).key()] = value
        if parsed.having is not None:
            env = dict(aggregate_env)
            for column, value in zip(group_columns, key):
                env[column] = value
            if not parsed.having.evaluate(env):
                continue
        rows.append(tuple(row))
    return rows


def _reference_aggregate(
    function: str, column: Optional[str], members: Sequence[Dict[str, Value]]
) -> Value:
    if function == "COUNT" and column is None:
        return len(members)
    values = [env[column] for env in members if env[column] is not None]
    if function == "COUNT":
        return len(values)
    if not values:
        return None
    if function == "MIN":
        return min(values)
    if function == "MAX":
        return max(values)
    total = 0.0
    for value in values:
        total += float(value)
    if function == "SUM":
        return total
    if function == "AVG":
        return total / len(values)
    raise ReproError(f"unsupported aggregate {function!r}")


def _order_positions(parsed: ParsedQuery, star_keys: List[str]) -> List[int]:
    """Positions of the ORDER BY targets within the reference output row."""
    positions = []
    for order_item in parsed.order_by:
        position = None
        if parsed.select_star:
            if order_item.column in star_keys:
                position = star_keys.index(order_item.column)
        else:
            for index, item in enumerate(parsed.select_items):
                if order_item.function is not None:
                    if (
                        item.function == order_item.function
                        and item.column == order_item.column
                    ):
                        position = index
                        break
                elif item.function is None and (
                    item.column == order_item.column
                    or item.alias == order_item.column
                ):
                    position = index
                    break
        if position is None:
            raise ReproError(
                f"ORDER BY target {order_item.to_sql()!r} not found in SELECT list"
            )
        positions.append(position)
    return positions


# --------------------------------------------------------------------------- #
# Running the matrix
# --------------------------------------------------------------------------- #


class DifferentialRunner:
    """Owns the engine sessions and runs queries across the config matrix."""

    def __init__(
        self,
        catalog: Catalog,
        configs: Optional[Sequence[EngineConfig]] = None,
    ) -> None:
        self.catalog = catalog
        self.configs = list(configs) if configs is not None else default_configs()
        self._serial = Database(catalog=catalog)
        self._parallel = Database(
            catalog=catalog, parallelism=2, parallel_mode="thread"
        )
        self._process = Database(
            catalog=catalog, parallelism=2, parallel_mode="process"
        )

    def run_config(self, sql: str, config: EngineConfig) -> List[Row]:
        """Execute one query under one configuration, returning raw rows."""
        if not config.parallel:
            session = self._serial
        elif config.backend == "process":
            session = self._process
        else:
            session = self._parallel
        previous = os.environ.get("REPRO_KERNELS")
        try:
            if config.kernels:
                os.environ.pop("REPRO_KERNELS", None)
            else:
                os.environ["REPRO_KERNELS"] = "off"
            return session.execute(
                sql, options=ExecOptions(engine=config.engine)
            ).rows()
        finally:
            if previous is None:
                os.environ.pop("REPRO_KERNELS", None)
            else:
                os.environ["REPRO_KERNELS"] = previous

    def check_sql(self, sql: str) -> List[Divergence]:
        """Run one query on every configuration against the reference."""
        parsed = parse_sql(sql)
        ordered = bool(parsed.order_by)
        expected = canonicalize(reference_rows(self.catalog, parsed), ordered)
        divergences: List[Divergence] = []
        for config in self.configs:
            try:
                actual = canonicalize(self.run_config(sql, config), ordered)
            except ReproError as exc:
                divergences.append(
                    Divergence(
                        sql=sql,
                        config=config.label(),
                        expected=expected,
                        actual=[],
                        error=f"{type(exc).__name__}: {exc}",
                    )
                )
                continue
            if actual != expected:
                divergences.append(
                    Divergence(
                        sql=sql,
                        config=config.label(),
                        expected=expected,
                        actual=actual,
                    )
                )
        return divergences

    def check(
        self,
        queries: Sequence[GeneratedQuery],
        shrink: bool = True,
    ) -> DifferentialReport:
        """Run a generated corpus through the matrix, shrinking any failure."""
        report = DifferentialReport(configs=len(self.configs))
        for query in queries:
            divergences = self.check_sql(query.sql)
            report.queries_checked += 1
            if not divergences:
                continue
            minimized = None
            if shrink:
                minimized = shrink_failing_query(
                    query.parsed, lambda candidate: bool(self.check_sql(candidate.to_sql()))
                )
            for divergence in divergences:
                divergence.minimized_sql = (
                    minimized.to_sql() if minimized is not None else None
                )
            report.divergences.extend(divergences)
        return report

    def close(self) -> None:
        # The pools are process-wide, so closing either parallel session
        # tears both down; both closes are idempotent.
        self._process.close()
        self._parallel.close()


def run_differential(
    catalog: Catalog,
    queries: Sequence[GeneratedQuery],
    configs: Optional[Sequence[EngineConfig]] = None,
    shrink: bool = True,
) -> DifferentialReport:
    """Convenience wrapper: build a runner, check the corpus, close it."""
    runner = DifferentialRunner(catalog, configs=configs)
    try:
        return runner.check(queries, shrink=shrink)
    finally:
        runner.close()


# --------------------------------------------------------------------------- #
# The shrinker
# --------------------------------------------------------------------------- #


def _prune_alias(parsed: ParsedQuery, alias: str) -> Optional[ParsedQuery]:
    """Remove a FROM item and everything that references its alias."""
    candidate = copy.deepcopy(parsed)
    before = len(candidate.from_items)
    candidate.from_items = [
        item for item in candidate.from_items if item.alias != alias
    ]
    if len(candidate.from_items) == before or not candidate.from_items:
        return None

    prefix = f"{alias}."

    def references(text: Optional[str]) -> bool:
        return text is not None and prefix in text

    kept_where = [
        c for c in conjuncts(candidate.where) if alias not in c.aliases()
    ]
    candidate.where = _rebuild_and(kept_where)
    candidate.select_items = [
        item for item in candidate.select_items if not references(item.column)
    ]
    candidate.group_by = [c for c in candidate.group_by if not c.startswith(prefix)]
    candidate.order_by = [
        item for item in candidate.order_by if not references(item.column)
    ]
    if candidate.having is not None and prefix in candidate.having.to_sql():
        candidate.having = None
    if not candidate.select_items and not candidate.select_star:
        candidate.select_items = [SelectItem("COUNT", None)]
        candidate.group_by = []
        candidate.order_by = []
        candidate.having = None
        candidate.distinct = False
    return candidate


def _rebuild_and(items: List[Expression]) -> Optional[Expression]:
    from repro.query.expressions import And

    if not items:
        return None
    if len(items) == 1:
        return items[0]
    return And(list(items))


def _shrink_candidates(parsed: ParsedQuery):
    """Yield progressively smaller variants of a failing query."""
    # Big structural cuts first: drop whole FROM items (left joins before
    # inner tables, never the first table).
    for item in reversed(parsed.from_items[1:]):
        candidate = _prune_alias(parsed, item.alias)
        if candidate is not None:
            yield candidate

    # Drop non-join WHERE conjuncts one at a time (join equalities stay, so
    # dropping a filter never turns the query into a cross product).
    where = conjuncts(parsed.where)
    for index, conjunct in enumerate(where):
        if _is_join_equality(conjunct):
            continue
        candidate = copy.deepcopy(parsed)
        kept = conjuncts(candidate.where)
        del kept[index]
        candidate.where = _rebuild_and(kept)
        yield candidate

    # Clause-level cuts.
    if parsed.having is not None:
        candidate = copy.deepcopy(parsed)
        candidate.having = None
        yield candidate
    if parsed.order_by:
        candidate = copy.deepcopy(parsed)
        candidate.order_by = []
        yield candidate
        for index in range(len(parsed.order_by)):
            candidate = copy.deepcopy(parsed)
            del candidate.order_by[index]
            yield candidate
    if parsed.limit is not None:
        candidate = copy.deepcopy(parsed)
        candidate.limit = None
        yield candidate
    if parsed.distinct:
        candidate = copy.deepcopy(parsed)
        candidate.distinct = False
        yield candidate

    # Shrink IN lists by halves.
    for index, conjunct in enumerate(conjuncts(parsed.where)):
        if isinstance(conjunct, InList) and len(conjunct.values) > 1:
            candidate = copy.deepcopy(parsed)
            kept = conjuncts(candidate.where)
            old = kept[index]
            # Rebuild rather than mutate: InList caches its value set.
            kept[index] = InList(
                old.operand, old.values[: max(1, len(old.values) // 2)], old.negated
            )
            candidate.where = _rebuild_and(kept)
            yield candidate

    # Drop SELECT items (only when no clause depends on output positions).
    if (
        parsed.having is None
        and not parsed.order_by
        and len(parsed.select_items) > 1
    ):
        for index in range(len(parsed.select_items)):
            candidate = copy.deepcopy(parsed)
            removed = candidate.select_items.pop(index)
            if removed.function is None and removed.column in candidate.group_by:
                continue  # selected group keys must stay selected
            yield candidate


def shrink_failing_query(
    parsed: ParsedQuery,
    still_fails: Callable[[ParsedQuery], bool],
    max_attempts: int = 300,
) -> ParsedQuery:
    """Greedily minimize a failing query while ``still_fails`` holds.

    Each round tries every candidate mutation; the first one that still
    fails becomes the new baseline and the round restarts.  Stops at a
    fixed point (no candidate fails) or after ``max_attempts`` candidate
    evaluations, whichever comes first.  The returned query is guaranteed
    to still fail (the original is returned unchanged if nothing smaller
    does).
    """
    current = copy.deepcopy(parsed)
    attempts = 0
    progress = True
    while progress and attempts < max_attempts:
        progress = False
        for candidate in _shrink_candidates(current):
            attempts += 1
            if attempts > max_attempts:
                break
            try:
                failing = still_fails(candidate)
            except ReproError:
                failing = False  # a candidate the planner rejects is useless
            if failing:
                current = candidate
                progress = True
                break
    return current
