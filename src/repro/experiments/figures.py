"""Per-figure experiment drivers (Section 5 of the paper).

Every figure and headline table of the evaluation has a ``run_figXX``
function here.  Each driver returns a dictionary with the raw measurement
records plus the derived series/summary the paper plots, and
``format_figure`` renders it as text.  The drivers accept a ``scale``
parameter so the same code can run as a quick smoke test (tiny scale, used by
the unit tests), as a pytest benchmark (small scale), or as a fuller
reproduction from the command line::

    python -m repro.experiments.figures fig14 --scale 0.3
    python -m repro.experiments.figures all --scale 0.2 --repeats 1
"""

from __future__ import annotations

import argparse
import os
from typing import Dict, List, Optional, Sequence

from repro.core.colt import TrieStrategy
from repro.core.engine import FreeJoinOptions
from repro.engine.options import ExecOptions
from repro.engine.session import Database
from repro.experiments.harness import Measurement, run_suite
from repro.experiments.report import (
    format_headline,
    format_records,
    format_scatter,
    speedup_summary,
    summarize_headline,
)
from repro.workloads.job import generate_job_workload
from repro.workloads.lsqb import generate_lsqb_workload

#: All engines compared in the paper.
ENGINES = ("freejoin", "binary", "generic")

#: Default LSQB scale factors (the paper's 0.1/0.3/1/3, scaled to Python).
LSQB_SCALE_FACTORS = (0.1, 0.3, 1.0, 3.0)


# --------------------------------------------------------------------------- #
# Figure 14 — JOB run time: Free Join and Generic Join vs. binary join
# --------------------------------------------------------------------------- #


def run_fig14(
    scale: float = 0.3,
    repeats: int = 1,
    query_names: Optional[Sequence[str]] = None,
    seed: int = 42,
) -> Dict[str, object]:
    """JOB run-time comparison of the three engines (Figure 14)."""
    workload = generate_job_workload(scale=scale, seed=seed)
    measurements = run_suite(
        workload.catalog,
        workload.queries,
        ENGINES,
        workload="job",
        repeats=repeats,
        scale=scale,
        query_names=query_names,
    )
    return {
        "figure": "fig14",
        "measurements": measurements,
        "scatter": format_scatter(measurements, "binary", ["freejoin", "generic"]),
        "summary": summarize_headline(measurements),
    }


# --------------------------------------------------------------------------- #
# Figure 15 / Figure 20 — robustness to bad cardinality estimates
# --------------------------------------------------------------------------- #


def run_fig15(
    scale: float = 0.3,
    repeats: int = 1,
    query_names: Optional[Sequence[str]] = None,
    seed: int = 42,
) -> Dict[str, object]:
    """JOB run time with the Always-1 (bad) cardinality estimator (Figure 15)."""
    workload = generate_job_workload(scale=scale, seed=seed)
    measurements = run_suite(
        workload.catalog,
        workload.queries,
        ENGINES,
        workload="job-badplan",
        variant="bad-estimates",
        bad_estimates=True,
        repeats=repeats,
        scale=scale,
        query_names=query_names,
    )
    return {
        "figure": "fig15",
        "measurements": measurements,
        "scatter": format_scatter(measurements, "binary", ["freejoin", "generic"]),
        "summary": summarize_headline(measurements),
    }


def run_fig20(
    scale: float = 0.3,
    repeats: int = 1,
    query_names: Optional[Sequence[str]] = None,
    seed: int = 42,
) -> Dict[str, object]:
    """Per-engine sensitivity to plan quality (Figure 20).

    For each engine, pairs the run time with the default estimator against
    the run time with the Always-1 estimator; the per-engine slowdown factors
    are the series of the figure's three panels.
    """
    workload = generate_job_workload(scale=scale, seed=seed)
    good = run_suite(
        workload.catalog, workload.queries, ENGINES,
        workload="job", variant="good", repeats=repeats, scale=scale,
        query_names=query_names,
    )
    bad = run_suite(
        workload.catalog, workload.queries, ENGINES,
        workload="job", variant="bad", bad_estimates=True, repeats=repeats,
        scale=scale, query_names=query_names,
    )
    panels: Dict[str, List[Dict[str, object]]] = {}
    slowdowns: Dict[str, List[float]] = {}
    good_index = {(m.engine, m.query): m for m in good}
    for measurement in bad:
        match = good_index.get((measurement.engine, measurement.query))
        if match is None:
            continue
        slowdown = measurement.seconds / match.seconds if match.seconds > 0 else 0.0
        panels.setdefault(measurement.engine, []).append({
            "query": measurement.query,
            "good_s": match.seconds,
            "bad_s": measurement.seconds,
            "slowdown": slowdown,
        })
        slowdowns.setdefault(measurement.engine, []).append(slowdown)
    from repro.experiments.report import geometric_mean

    return {
        "figure": "fig20",
        "measurements": good + bad,
        "panels": panels,
        "geomean_slowdown": {
            engine: geometric_mean(values) for engine, values in slowdowns.items()
        },
    }


# --------------------------------------------------------------------------- #
# Figure 16 / Figure 19 — LSQB across scale factors
# --------------------------------------------------------------------------- #


def run_fig16(
    scale_factors: Sequence[float] = LSQB_SCALE_FACTORS,
    repeats: int = 1,
    query_names: Optional[Sequence[str]] = None,
    seed: int = 7,
) -> Dict[str, object]:
    """LSQB run time across scale factors (Figure 16).

    The paper's third series (Kùzu, an external Generic Join system) is
    played by a deliberately slower Generic Join configuration: eager tries
    and a join-variables-last variable order, labelled ``generic-unoptimized``.
    """
    measurements: List[Measurement] = []
    for scale_factor in scale_factors:
        workload = generate_lsqb_workload(scale_factor=scale_factor, seed=seed)
        measurements.extend(
            run_suite(
                workload.catalog,
                workload.queries,
                ENGINES,
                workload="lsqb",
                repeats=repeats,
                scale=scale_factor,
                query_names=query_names,
            )
        )
        measurements.extend(
            _run_kuzu_role(workload, repeats, scale_factor, query_names)
        )
    series = _lsqb_series(measurements)
    return {"figure": "fig16", "measurements": measurements, "series": series}


def _run_kuzu_role(
    workload, repeats: int, scale_factor: float, query_names: Optional[Sequence[str]]
) -> List[Measurement]:
    """The Kùzu-role series: Generic Join with a deliberately poor variable order."""
    from repro.genericjoin.executor import GenericJoinEngine, GenericJoinOptions
    from repro.query.planner import Planner
    from repro.optimizer.join_order import optimize_query

    measurements = []
    database = Database(workload.catalog)
    wanted = set(query_names) if query_names is not None else None
    for query in workload.queries:
        if wanted is not None and query.name not in wanted:
            continue
        logical = Planner(workload.catalog).plan_sql(query.sql, name=query.name)
        plan = optimize_query(logical.query, statistics_cache=database.statistics_cache)
        # Reverse the variable order: joins on shared variables happen late,
        # mimicking a system without a plan-aware variable order.
        from repro.genericjoin.variable_order import variable_order_from_binary_plan

        order = list(reversed(variable_order_from_binary_plan(logical.query, plan)))
        best = None
        for _ in range(max(1, repeats)):
            engine = GenericJoinEngine(
                GenericJoinOptions(output="count", variable_order=order)
            )
            report = engine.run(logical.query, plan)
            if best is None or report.total_seconds < best.total_seconds:
                best = report
        measurements.append(
            Measurement(
                workload="lsqb",
                query=query.name,
                engine="generic-unoptimized",
                variant="kuzu-role",
                seconds=best.total_seconds,
                build_seconds=best.build_seconds,
                join_seconds=best.join_seconds,
                output_rows=best.result.count(),
                category=query.category,
                scale=scale_factor,
            )
        )
    return measurements


def _lsqb_series(measurements: Sequence[Measurement]) -> List[Dict[str, object]]:
    records = []
    for measurement in measurements:
        records.append({
            "query": measurement.query,
            "engine": f"{measurement.engine}",
            "scale_factor": measurement.scale,
            "seconds": measurement.seconds,
            "output_rows": measurement.output_rows,
            "category": measurement.category,
        })
    records.sort(key=lambda r: (r["query"], r["engine"], r["scale_factor"]))
    return records


def run_fig19(
    scale_factors: Sequence[float] = (0.3, 1.0),
    repeats: int = 1,
    query_names: Optional[Sequence[str]] = None,
    seed: int = 7,
) -> Dict[str, object]:
    """LSQB with factorized output (Figure 19): flat vs. factorized Free Join."""
    measurements: List[Measurement] = []
    for scale_factor in scale_factors:
        workload = generate_lsqb_workload(scale_factor=scale_factor, seed=seed)
        for variant, options in (
            ("flat", FreeJoinOptions(output="rows")),
            ("factorized", FreeJoinOptions(output="factorized")),
        ):
            measurements.extend(
                run_suite(
                    workload.catalog,
                    workload.queries,
                    ["freejoin"],
                    workload="lsqb",
                    variant=variant,
                    freejoin_options=options,
                    repeats=repeats,
                    scale=scale_factor,
                    query_names=query_names,
                )
            )
    series = [
        {
            "query": m.query,
            "variant": m.variant,
            "scale_factor": m.scale,
            "seconds": m.seconds,
            "output_rows": m.output_rows,
        }
        for m in measurements
    ]
    series.sort(key=lambda r: (r["query"], r["variant"], r["scale_factor"]))
    return {"figure": "fig19", "measurements": measurements, "series": series}


# --------------------------------------------------------------------------- #
# Figure 17 — impact of COLT (trie strategy ablation)
# --------------------------------------------------------------------------- #


def run_fig17(
    scale: float = 0.3,
    repeats: int = 1,
    query_names: Optional[Sequence[str]] = None,
    seed: int = 42,
) -> Dict[str, object]:
    """Free Join with simple trie vs. SLT vs. COLT (Figure 17)."""
    workload = generate_job_workload(scale=scale, seed=seed)
    measurements: List[Measurement] = []
    for strategy in (TrieStrategy.SIMPLE, TrieStrategy.SLT, TrieStrategy.COLT):
        options = FreeJoinOptions(trie_strategy=strategy)
        measurements.extend(
            run_suite(
                workload.catalog,
                workload.queries,
                ["freejoin"],
                workload="job",
                variant=str(strategy),
                freejoin_options=options,
                repeats=repeats,
                scale=scale,
                query_names=query_names,
            )
        )
    summary = {
        "colt_vs_simple": speedup_summary(measurements, "freejoin/simple", "freejoin/colt"),
        "colt_vs_slt": speedup_summary(measurements, "freejoin/slt", "freejoin/colt"),
    }
    return {"figure": "fig17", "measurements": measurements, "summary": summary}


# --------------------------------------------------------------------------- #
# Figure 18 — impact of vectorization (batch size ablation)
# --------------------------------------------------------------------------- #


def run_fig18(
    scale: float = 0.3,
    repeats: int = 1,
    batch_sizes: Sequence[int] = (1, 10, 100, 1000),
    query_names: Optional[Sequence[str]] = None,
    seed: int = 42,
) -> Dict[str, object]:
    """Free Join with different vectorization batch sizes (Figure 18)."""
    workload = generate_job_workload(scale=scale, seed=seed)
    measurements: List[Measurement] = []
    for batch_size in batch_sizes:
        options = FreeJoinOptions(batch_size=batch_size)
        measurements.extend(
            run_suite(
                workload.catalog,
                workload.queries,
                ["freejoin"],
                workload="job",
                variant=f"batch{batch_size}",
                freejoin_options=options,
                repeats=repeats,
                scale=scale,
                query_names=query_names,
            )
        )
    summary = {
        f"batch{batch}_vs_batch1": speedup_summary(
            measurements, "freejoin/batch1", f"freejoin/batch{batch}"
        )
        for batch in batch_sizes
        if batch != 1
    }
    return {"figure": "fig18", "measurements": measurements, "summary": summary}


# --------------------------------------------------------------------------- #
# Ablations called out in DESIGN.md (not separate figures in the paper)
# --------------------------------------------------------------------------- #


def run_ablation_factoring(
    scale: float = 0.3,
    repeats: int = 1,
    query_names: Optional[Sequence[str]] = None,
    seed: int = 42,
) -> Dict[str, object]:
    """Free Join with and without plan factoring (Section 4.1)."""
    workload = generate_job_workload(scale=scale, seed=seed)
    measurements: List[Measurement] = []
    for variant, factor in (("factored", True), ("unfactored", False)):
        options = FreeJoinOptions(factor=factor)
        measurements.extend(
            run_suite(
                workload.catalog, workload.queries, ["freejoin"],
                workload="job", variant=variant, freejoin_options=options,
                repeats=repeats, scale=scale, query_names=query_names,
            )
        )
    summary = speedup_summary(measurements, "freejoin/unfactored", "freejoin/factored")
    return {"figure": "ablation-factoring", "measurements": measurements, "summary": summary}


def run_ablation_cover(
    scale: float = 0.3,
    repeats: int = 1,
    query_names: Optional[Sequence[str]] = None,
    seed: int = 42,
) -> Dict[str, object]:
    """Free Join with dynamic vs. static cover selection (Section 4.4)."""
    workload = generate_job_workload(scale=scale, seed=seed)
    measurements: List[Measurement] = []
    for variant, dynamic in (("dynamic", True), ("static", False)):
        options = FreeJoinOptions(dynamic_cover=dynamic)
        measurements.extend(
            run_suite(
                workload.catalog, workload.queries, ["freejoin"],
                workload="job", variant=variant, freejoin_options=options,
                repeats=repeats, scale=scale, query_names=query_names,
            )
        )
    summary = speedup_summary(measurements, "freejoin/static", "freejoin/dynamic")
    return {"figure": "ablation-cover", "measurements": measurements, "summary": summary}


# --------------------------------------------------------------------------- #
# Streaming execution: time-to-first-batch vs full materialization
# --------------------------------------------------------------------------- #


def run_streaming(
    scale: float = 0.3,
    repeats: int = 1,
    seed: int = 42,
) -> Dict[str, object]:
    """Time-to-first-batch of the streaming pipeline on a large-output join.

    The synthetic workload is the shared fan-out equi-join
    (:func:`repro.workloads.synthetic.fanout_tables`) whose output is ~50x
    its input: exactly the shape where materialize-then-return pays
    worst-case time-to-first-byte.  Two series are measured: the full
    materialized execution (``Database.execute`` + row access) and the wall
    time until ``Database.execute_iter`` delivers its first batch.  The CI
    gate (``benchmarks/test_bench_streaming.py``) requires first-batch
    <= 0.5x the materialized wall clock over the same workload builder;
    this driver feeds the numbers into ``BENCH_<label>.json`` so the
    benchmark-history trend gate tracks them PR over PR.
    """
    import time as time_module

    from repro.workloads.synthetic import FANOUT_SQL, fanout_tables

    rows = max(1000, int(25_000 * scale))
    database = Database()
    database.register_all(fanout_tables(rows, seed=seed).values())
    sql = FANOUT_SQL

    measurements: List[Measurement] = []
    summary: Dict[str, object] = {}
    for _ in range(max(1, repeats)):
        started = time_module.perf_counter()
        outcome = database.execute(sql, name="fanout")
        output_rows = len(outcome.rows())
        full_seconds = time_module.perf_counter() - started

        started = time_module.perf_counter()
        stream = database.execute_iter(
            sql, name="fanout", options=ExecOptions(batch_rows=1024)
        )
        first = stream.next_batch()
        first_seconds = time_module.perf_counter() - started
        streamed = len(first or [])
        for batch in stream:
            streamed += len(batch)
        if streamed != output_rows:
            raise RuntimeError(
                f"streamed {streamed} rows but materialized {output_rows}"
            )

        measurements.append(Measurement(
            workload="stream-fanout", query="fanout", engine="freejoin",
            variant="materialized", seconds=full_seconds,
            build_seconds=0.0, join_seconds=full_seconds,
            output_rows=output_rows, scale=scale,
        ))
        measurements.append(Measurement(
            workload="stream-fanout", query="fanout", engine="freejoin",
            variant="first-batch", seconds=first_seconds,
            build_seconds=0.0, join_seconds=first_seconds,
            output_rows=streamed, scale=scale,
        ))
        summary = {
            "output_rows": output_rows,
            "materialized_seconds": full_seconds,
            "first_batch_seconds": first_seconds,
            "first_batch_ratio": (
                first_seconds / full_seconds if full_seconds > 0 else 0.0
            ),
        }
    return {
        "figure": "streaming",
        "measurements": measurements,
        "summary": summary,
    }


# --------------------------------------------------------------------------- #
# Streaming aggregation: first-group-batch latency vs materialized aggregate
# --------------------------------------------------------------------------- #


def run_aggregation(
    scale: float = 0.3,
    repeats: int = 1,
    seed: int = 42,
) -> Dict[str, object]:
    """Grouped-aggregate streaming on the Zipf-skewed fan-out join.

    Measures the partial-aggregate plane the paper-figure workloads (joins +
    ``COUNT``/``MIN`` + group-by) run through: the full materialized
    grouped-aggregate execution (``Database.execute``) against the wall time
    until ``Database.execute_iter`` delivers its **first group-delta batch**
    mid-join.  The stream is then drained and collapsed (last-write-wins per
    group key) to assert exact parity with the materialized result.  The CI
    gate (``benchmarks/test_bench_aggregation.py``) bounds the same ratio at
    0.6; this driver feeds the numbers into ``BENCH_<label>.json`` so the
    benchmark-history trend gate tracks them PR over PR.
    """
    import time as time_module

    from repro.engine.streaming import collapse_grouped_batches
    from repro.workloads.synthetic import FANOUT_GROUP_SQL, fanout_tables

    rows = max(1000, int(25_000 * scale))
    database = Database()
    database.register_all(fanout_tables(rows, seed=seed, skew=1.2).values())
    sql = FANOUT_GROUP_SQL

    measurements: List[Measurement] = []
    summary: Dict[str, object] = {}
    for _ in range(max(1, repeats)):
        started = time_module.perf_counter()
        outcome = database.execute(sql, name="fanout-group")
        expected = outcome.rows()
        full_seconds = time_module.perf_counter() - started

        started = time_module.perf_counter()
        stream = database.execute_iter(
            sql, name="fanout-group", options=ExecOptions(batch_rows=256)
        )
        batches = [stream.next_batch()]
        first_seconds = time_module.perf_counter() - started
        if not batches[0]:
            raise RuntimeError("grouped stream must yield a non-empty first batch")
        batches.extend(stream)
        collapsed = collapse_grouped_batches(batches, [0])
        if collapsed != expected:
            raise RuntimeError(
                f"collapsed stream produced {len(collapsed)} groups that do "
                f"not match the materialized aggregate ({len(expected)})"
            )

        measurements.append(Measurement(
            workload="aggregate-fanout", query="fanout-group", engine="freejoin",
            variant="materialized", seconds=full_seconds,
            build_seconds=0.0, join_seconds=full_seconds,
            output_rows=len(expected), scale=scale,
        ))
        measurements.append(Measurement(
            workload="aggregate-fanout", query="fanout-group", engine="freejoin",
            variant="first-group-batch", seconds=first_seconds,
            build_seconds=0.0, join_seconds=first_seconds,
            output_rows=len(batches[0]), scale=scale,
        ))
        summary = {
            "groups": len(expected),
            "materialized_seconds": full_seconds,
            "first_group_batch_seconds": first_seconds,
            "first_group_batch_ratio": (
                first_seconds / full_seconds if full_seconds > 0 else 0.0
            ),
        }
    return {
        "figure": "aggregation",
        "measurements": measurements,
        "summary": summary,
    }


# --------------------------------------------------------------------------- #
# Serving mix: routed engines + admission control under a multi-tenant burst
# --------------------------------------------------------------------------- #


def run_serving_mix(
    scale: float = 0.3,
    repeats: int = 1,
    seed: int = 42,
) -> Dict[str, object]:
    """Multi-tenant burst through the routed, admission-gated front door.

    A burst of interleaved point lookups and analytic group-bys hits an
    :class:`~repro.serve.AsyncDatabase` configured with ``engine="auto"``
    routing and an :class:`~repro.router.admission.AdmissionGate`.  The
    burst intentionally exceeds the gate's limits, so the run shows the
    serving layer's two promises at once: requests past capacity are shed
    *fast* (typed :class:`~repro.errors.AdmissionRejected`, not slow
    deadline timeouts) and admitted queries keep a bounded p95.  The CI
    gate (``benchmarks/test_bench_serving_mix.py``) asserts exactly that:
    zero deadline timeouts, at least one rejection, served p95 within a
    fixed multiple of the unloaded median — and this driver feeds the same
    numbers into ``BENCH_<label>.json`` for the history trend gate.
    """
    import asyncio
    import statistics as statistics_module
    import time as time_module

    from repro.errors import AdmissionRejected, DeadlineExceeded
    from repro.router.admission import ANALYTIC, POINT, AdmissionGate
    from repro.serve import AsyncDatabase
    from repro.workloads.synthetic import FANOUT_GROUP_SQL, fanout_tables

    rows = max(500, int(12_000 * scale))
    database = Database(default_engine="auto")
    database.register_all(fanout_tables(rows, seed=seed, skew=1.2).values())
    point_sql = "SELECT COUNT(*) FROM fan_r, fan_s WHERE fan_r.k = fan_s.k"
    analytic_sql = FANOUT_GROUP_SQL

    # One unloaded reference query per class: the burst's latency bound is
    # expressed relative to this, so the figure is machine-speed independent.
    unloaded = statistics_module.median(
        _timed_seconds(database, analytic_sql) for _ in range(3)
    )
    budget = max(5.0, 50.0 * unloaded)

    gate = AdmissionGate(point_limit=4, analytic_limit=2)
    # 12 point + 6 analytic per wave, interleaved 2:1 — more than the gate
    # admits at once, so every wave sheds load.
    wave = []
    for _ in range(6):
        wave.append((point_sql, POINT))
        wave.append((point_sql, POINT))
        wave.append((analytic_sql, ANALYTIC))

    async def serve_wave(server):
        async def one(index, sql, query_class):
            started = time_module.perf_counter()
            try:
                await server.execute(
                    sql, name=f"mix-{index}", query_class=query_class,
                    options=ExecOptions(timeout=budget),
                )
                return (query_class, "served", time_module.perf_counter() - started)
            except AdmissionRejected:
                return (query_class, "rejected", time_module.perf_counter() - started)
            except DeadlineExceeded:
                return (query_class, "timeout", time_module.perf_counter() - started)

        tasks = [
            asyncio.create_task(one(index, sql, query_class))
            for index, (sql, query_class) in enumerate(wave)
        ]
        return await asyncio.gather(*tasks)

    async def serve_burst():
        results = []
        async with AsyncDatabase(
            database, max_concurrency=4, admission=gate
        ) as server:
            for _ in range(max(1, repeats) * 2):
                results.extend(await serve_wave(server))
        return results

    results = asyncio.run(serve_burst())
    served = sorted(s for _, status, s in results if status == "served")
    rejected = sorted(s for _, status, s in results if status == "rejected")
    timeouts = [s for _, status, s in results if status == "timeout"]
    if not served:
        raise RuntimeError("serving mix admitted no queries at all")

    def percentile(values, fraction):
        return values[min(len(values) - 1, int(fraction * len(values)))]

    measurements = [
        Measurement(
            workload="serving-mix", query="burst", engine="auto",
            variant="served-p50", seconds=percentile(served, 0.50),
            build_seconds=0.0, join_seconds=percentile(served, 0.50),
            output_rows=len(served), scale=scale,
        ),
        Measurement(
            workload="serving-mix", query="burst", engine="auto",
            variant="served-p95", seconds=percentile(served, 0.95),
            build_seconds=0.0, join_seconds=percentile(served, 0.95),
            output_rows=len(served), scale=scale,
        ),
        Measurement(
            workload="serving-mix", query="burst", engine="auto",
            variant="reject-p95",
            seconds=percentile(rejected, 0.95) if rejected else 0.0,
            build_seconds=0.0,
            join_seconds=percentile(rejected, 0.95) if rejected else 0.0,
            output_rows=len(rejected), scale=scale,
        ),
    ]
    summary = {
        "requests": len(results),
        "served": len(served),
        "rejected": len(rejected),
        "deadline_timeouts": len(timeouts),
        "unloaded_seconds": unloaded,
        "served_p50_seconds": percentile(served, 0.50),
        "served_p95_seconds": percentile(served, 0.95),
        "reject_p95_seconds": percentile(rejected, 0.95) if rejected else 0.0,
        "admission": gate.snapshot(),
        "router": database.router.telemetry(),
    }
    return {
        "figure": "serving-mix",
        "measurements": measurements,
        "summary": summary,
    }


def _timed_seconds(database: Database, sql: str) -> float:
    import time as time_module

    started = time_module.perf_counter()
    database.execute(sql)
    return time_module.perf_counter() - started


# --------------------------------------------------------------------------- #
# Headline numbers (Section 1 / Section 5.2)
# --------------------------------------------------------------------------- #


def run_headline(
    job_scale: float = 0.3,
    lsqb_scale: float = 1.0,
    repeats: int = 1,
    seed: int = 42,
) -> Dict[str, object]:
    """Headline speedups of Free Join vs. binary join and Generic Join."""
    job = run_fig14(scale=job_scale, repeats=repeats, seed=seed)
    lsqb_workload = generate_lsqb_workload(scale_factor=lsqb_scale)
    lsqb_measurements = run_suite(
        lsqb_workload.catalog, lsqb_workload.queries, ENGINES,
        workload="lsqb", repeats=repeats, scale=lsqb_scale,
    )
    measurements = list(job["measurements"]) + lsqb_measurements
    return {
        "figure": "headline",
        "measurements": measurements,
        "summary": summarize_headline(measurements),
    }


# --------------------------------------------------------------------------- #
# Kernel plane: vectorized batch kernels vs the row-at-a-time reference
# --------------------------------------------------------------------------- #


def _time_factorized_star(
    drivers: int, fan: int, repeats: int
) -> Dict[str, Measurement]:
    """Time factorized delivery of a Fig. 19-style star, kernels on vs off.

    The workload is shaped for factorization to matter: few driver groups
    (``drivers`` distinct join keys) each carrying two large independent
    factors (``fan`` matches per probe table), so the factorized
    representation is ``drivers * 2 * fan`` values standing for
    ``drivers * fan**2`` logical rows.  Both variants deliver into a
    ``FactorizedSink`` — the vectorized path emits factorized batches
    straight from the kernel executor (``on_factorized_batch``), the
    ``REPRO_KERNELS=off`` variant is the row-at-a-time reference.
    """
    import time as time_module

    from repro.core.engine import FreeJoinEngine
    from repro.engine.output import FactorizedSink
    from repro.optimizer.join_order import optimize_query
    from repro.query.builder import QueryBuilder
    from repro.storage.table import Table

    builder = QueryBuilder("factorized-star")
    builder.add_atom(
        "r",
        Table.from_rows("r", ["x", "a"], [(x, x) for x in range(drivers)]),
        ["x", "a"],
    )
    builder.add_atom(
        "s",
        Table.from_rows(
            "s", ["x", "b"], [(x, b) for x in range(drivers) for b in range(fan)]
        ),
        ["x", "b"],
    )
    builder.add_atom(
        "t",
        Table.from_rows(
            "t", ["x", "c"], [(x, c) for x in range(drivers) for c in range(fan)]
        ),
        ["x", "c"],
    )
    query = builder.build()
    plan = optimize_query(query)
    timings: Dict[str, Measurement] = {}
    for variant, setting in (("factorized", None), ("factorized-row-path", "off")):
        if setting is None:
            os.environ.pop("REPRO_KERNELS", None)
        else:
            os.environ["REPRO_KERNELS"] = setting
        best = None
        # One untimed warmup run per variant: the ratio gate compares
        # steady-state delivery, not first-run program compilation and
        # index builds (both are LRU-cached across runs).
        for attempt in range(max(1, repeats) + 1):
            sink = FactorizedSink(query.output_variables)
            started = time_module.perf_counter()
            FreeJoinEngine(FreeJoinOptions(parallelism=1)).run(
                query, plan, sink=sink
            )
            elapsed = time_module.perf_counter() - started
            if attempt and (best is None or elapsed < best):
                best = elapsed
        timings[variant] = Measurement(
            workload="factorized-star",
            query=f"star-{drivers}x{fan}",
            engine="freejoin",
            variant=variant,
            seconds=best,
            build_seconds=0.0,
            join_seconds=best,
            output_rows=drivers * fan * fan,
        )
    return timings


#: Fallback reasons that must never appear on the headline workloads: the
#: vectorized path serves factorized sinks directly, and the left-outer
#: extension runs as a batch anti-probe whenever kernels are on.
FALLBACK_BUDGET_REASONS = ("factorized-output", "left-outer-extension")


def _fallback_sweep(job, lsqb) -> Dict[str, object]:
    """Run the headline queries (+ a LEFT JOIN) and count kernel fallbacks.

    Returns a JSON-ready record with one count per budgeted reason plus the
    full observed reason histogram, for the ``--kernels-gate`` fallback
    budget in ``scripts/check_bench_regression.py``.
    """
    from repro.storage.table import Table

    observed: Dict[str, int] = {}
    queries = 0

    def record(outcome) -> None:
        nonlocal queries
        queries += 1
        kernels = outcome.report.details.get("kernels", {})
        for reason in kernels.get("fallbacks", []):
            observed[reason] = observed.get(reason, 0) + 1

    for workload in (job, lsqb):
        database = Database(workload.catalog)
        for query in workload.queries:
            record(
                database.execute(
                    query.sql, name=query.name, options=ExecOptions(engine="freejoin")
                )
            )
    outer = Database()
    outer.register(
        Table.from_rows(
            "orders",
            ["id", "cid"],
            [(i, i % 9 if i % 4 else None) for i in range(200)],
        )
    )
    outer.register(
        Table.from_rows(
            "customers", ["id", "region"], [(i, i % 3) for i in range(12)]
        )
    )
    record(
        outer.execute(
            "SELECT orders.id, customers.region FROM orders "
            "LEFT OUTER JOIN customers ON orders.cid = customers.id"
        )
    )
    return {
        "queries": queries,
        "observed": observed,
        "budget": {
            reason: observed.get(reason, 0) for reason in FALLBACK_BUDGET_REASONS
        },
    }


def run_kernels(
    job_scale: float = 0.3,
    lsqb_scale: float = 1.0,
    repeats: int = 1,
    seed: int = 42,
) -> Dict[str, object]:
    """Batch kernel plane speedup over the row-at-a-time reference path.

    Runs the headline workload twice in the same process — once on the
    default vectorized kernels, once with ``REPRO_KERNELS=off`` — so the
    measured ratio is machine-independent by construction.  Two more
    same-process phases feed the CI gate: a Fig. 19-style factorized star
    delivered into a ``FactorizedSink`` (vectorized factorized batches vs
    the row-at-a-time reference), and a fallback sweep counting kernel
    fallback reasons across the headline queries plus a ``LEFT OUTER
    JOIN``.  The ``bench-kernels`` gate
    (``scripts/check_bench_regression.py --kernels-gate``) fails when the
    vectorized wall exceeds half the row-path wall, when factorized
    delivery exceeds 0.6x its row path, or when a budgeted fallback
    (``factorized-output`` / ``left-outer-extension``) fires at all.
    """
    job = generate_job_workload(scale=job_scale, seed=seed)
    lsqb = generate_lsqb_workload(scale_factor=lsqb_scale)
    measurements: List[Measurement] = []
    walls: Dict[str, float] = {}
    prior = os.environ.get("REPRO_KERNELS")
    try:
        for variant, setting in (("vectorized", None), ("row-path", "off")):
            if setting is None:
                os.environ.pop("REPRO_KERNELS", None)
            else:
                os.environ["REPRO_KERNELS"] = setting
            batch = run_suite(
                job.catalog, job.queries, ENGINES,
                workload="job", variant=variant, repeats=repeats,
                scale=job_scale,
            )
            batch += run_suite(
                lsqb.catalog, lsqb.queries, ENGINES,
                workload="lsqb", variant=variant, repeats=repeats,
                scale=lsqb_scale,
            )
            walls[variant] = sum(m.seconds for m in batch)
            measurements.extend(batch)
        factorized = _time_factorized_star(drivers=50, fan=40, repeats=repeats)
        measurements.extend(factorized.values())
        os.environ.pop("REPRO_KERNELS", None)
        fallbacks = _fallback_sweep(job, lsqb)
    finally:
        if prior is None:
            os.environ.pop("REPRO_KERNELS", None)
        else:
            os.environ["REPRO_KERNELS"] = prior
    vectorized = walls["vectorized"]
    row_path = walls["row-path"]
    fact = factorized["factorized"].seconds
    fact_rows = factorized["factorized-row-path"].seconds
    return {
        "figure": "kernels",
        "measurements": measurements,
        "summary": {
            "vectorized_seconds": round(vectorized, 4),
            "row_path_seconds": round(row_path, 4),
            "speedup": round(row_path / vectorized, 2) if vectorized > 0 else 0.0,
            "factorized_seconds": round(fact, 4),
            "factorized_row_path_seconds": round(fact_rows, 4),
            "factorized_speedup": round(fact_rows / fact, 2) if fact > 0 else 0.0,
            "fallbacks": fallbacks,
        },
    }


# --------------------------------------------------------------------------- #
# Incremental view maintenance: delta folding vs re-execution per burst
# --------------------------------------------------------------------------- #


def run_ivm(
    scale: float = 0.3,
    repeats: int = 1,
    seed: int = 42,
) -> Dict[str, object]:
    """Standing-query maintenance cost: delta fold vs full re-execution.

    A grouped aggregate over one growing fact table is maintained two ways
    across identical append bursts: a :meth:`Database.subscribe` standing
    query that folds only the delta rows through the partial-aggregate
    states (the table-append hook runs synchronously, so the timed
    ``append_rows`` call *is* the maintenance cost), and a plain database
    that re-runs ``execute`` after every burst.  Both see the same data;
    after every burst the maintained snapshot is asserted byte-identical to
    the re-executed result, so a fast-but-wrong fold cannot score.  The CI
    gate (``benchmarks/test_bench_ivm.py`` and
    ``scripts/check_bench_regression.py --ivm-gate``) bounds
    ``delta-fold / reexecute`` at 0.3; this driver feeds the same numbers
    into ``BENCH_<label>.json`` for the history trend gate.
    """
    import random
    import time as time_module

    from repro.storage.table import Table

    base_rows = max(500, int(8_000 * scale))
    burst_rows = max(100, int(1_000 * scale))
    bursts = 8
    rng = random.Random(seed)

    def make_rows(count: int) -> List[tuple]:
        return [
            (rng.randrange(64), rng.randrange(1, 40), rng.randrange(-100, 100))
            for _ in range(count)
        ]

    columns = ["k", "d", "v"]
    seed_rows = make_rows(base_rows)
    burst_data = [make_rows(burst_rows) for _ in range(bursts)]
    sql = (
        "SELECT ivm_fact.k, SUM(ivm_fact.v), COUNT(*) "
        "FROM ivm_fact GROUP BY ivm_fact.k"
    )

    measurements: List[Measurement] = []
    summary: Dict[str, object] = {}
    for _ in range(max(1, repeats)):
        delta_db = Database()
        delta_db.register(Table.from_rows("ivm_fact", columns, seed_rows))
        reexec_db = Database()
        reexec_db.register(Table.from_rows("ivm_fact", columns, seed_rows))
        standing = delta_db.subscribe(
            sql, options=ExecOptions(batch_rows=4096, max_batches=64), name="ivm"
        )
        if standing.mode != "delta":
            raise RuntimeError(
                f"ivm figure expects the delta path, got mode={standing.mode!r} "
                f"(fallback {standing.fallback_reason!r})"
            )
        delta_seconds = 0.0
        reexec_seconds = 0.0
        for index, burst in enumerate(burst_data):
            started = time_module.perf_counter()
            delta_db.catalog.get("ivm_fact").append_rows(burst)
            burst_delta = time_module.perf_counter() - started
            delta_seconds += burst_delta
            # Drain the group-delta batches so the bounded queue never
            # backpressures the next fold into the timing.
            standing.pending_deltas()

            started = time_module.perf_counter()
            reexec_db.catalog.get("ivm_fact").append_rows(burst)
            expected = reexec_db.execute(sql, name="ivm").rows()
            burst_reexec = time_module.perf_counter() - started
            reexec_seconds += burst_reexec

            if standing.snapshot().to_rows() != expected:
                raise RuntimeError(
                    f"maintained snapshot diverged from re-execution after "
                    f"burst {index}"
                )
            measurements.append(Measurement(
                workload="ivm-scan", query=f"burst{index}", engine="freejoin",
                variant="delta-fold", seconds=burst_delta,
                build_seconds=0.0, join_seconds=burst_delta,
                output_rows=len(burst), scale=scale,
            ))
            measurements.append(Measurement(
                workload="ivm-scan", query=f"burst{index}", engine="freejoin",
                variant="reexecute", seconds=burst_reexec,
                build_seconds=0.0, join_seconds=burst_reexec,
                output_rows=len(expected), scale=scale,
            ))
        stats = standing.stats()
        standing.close()
        delta_db.close()
        reexec_db.close()
        summary = {
            "bursts": bursts,
            "base_rows": base_rows,
            "burst_rows": burst_rows,
            "mode": stats["mode"],
            "path": stats["path"],
            "deltas_folded": stats["deltas_folded"],
            "rows_skipped": stats["rows_skipped"],
            "delta_fold_seconds": round(delta_seconds, 4),
            "reexecute_seconds": round(reexec_seconds, 4),
            "delta_ratio": (
                round(delta_seconds / reexec_seconds, 4)
                if reexec_seconds > 0 else 0.0
            ),
        }
    return {
        "figure": "ivm",
        "measurements": measurements,
        "summary": summary,
    }


# --------------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------------- #

FIGURES = {
    "fig14": run_fig14,
    "fig15": run_fig15,
    "fig16": run_fig16,
    "fig17": run_fig17,
    "fig18": run_fig18,
    "fig19": run_fig19,
    "fig20": run_fig20,
    "ablation-factoring": run_ablation_factoring,
    "ablation-cover": run_ablation_cover,
    "headline": run_headline,
    "ivm": run_ivm,
    "kernels": run_kernels,
    "streaming": run_streaming,
    "aggregation": run_aggregation,
    "serving-mix": run_serving_mix,
}


def format_figure(result: Dict[str, object]) -> str:
    """Render a driver's result dictionary as text."""
    lines = [f"== {result['figure']} =="]
    if "scatter" in result:
        lines.append(str(result["scatter"]))
    if "series" in result:
        lines.append(format_records(result["series"], list(result["series"][0].keys())))
    if "panels" in result:
        for engine, records in result["panels"].items():
            lines.append(f"-- {engine} --")
            lines.append(format_records(records, list(records[0].keys())))
    if "geomean_slowdown" in result:
        lines.append(f"geomean slowdown with bad plans: {result['geomean_slowdown']}")
    if "summary" in result:
        summary = result["summary"]
        if isinstance(summary, dict) and summary and isinstance(
            next(iter(summary.values())), dict
        ):
            first = next(iter(summary.values()))
            if "vs_binary_geomean" in first:
                lines.append(format_headline(summary))
            else:
                for key, value in summary.items():
                    lines.append(f"{key}: {value}")
        else:
            lines.append(str(summary))
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Command-line entry point: run one figure (or all) and print it."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("figure", choices=sorted(FIGURES) + ["all"])
    parser.add_argument("--scale", type=float, default=0.3,
                        help="JOB scale factor (default 0.3)")
    parser.add_argument("--repeats", type=int, default=1)
    parser.add_argument("--queries", nargs="*", default=None,
                        help="restrict to these query names")
    arguments = parser.parse_args(argv)

    names = sorted(FIGURES) if arguments.figure == "all" else [arguments.figure]
    for name in names:
        driver = FIGURES[name]
        kwargs = {"repeats": arguments.repeats}
        if "scale" in driver.__code__.co_varnames:
            kwargs["scale"] = arguments.scale
        if arguments.queries:
            kwargs["query_names"] = arguments.queries
        result = driver(**kwargs)
        print(format_figure(result))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    raise SystemExit(main())
