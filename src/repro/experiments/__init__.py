"""Experiment harness regenerating the paper's evaluation (Section 5).

Each figure of the paper has a driver in :mod:`repro.experiments.figures`;
the drivers produce structured measurement records which
:mod:`repro.experiments.report` renders as the same series/tables the paper
plots.  Absolute numbers differ (CPython vs. Rust/DuckDB on the authors'
laptop); the harness is about reproducing the *relationships*: who wins, by
roughly what factor, and where the crossovers are.
"""

from repro.experiments.differential import (
    DifferentialReport,
    DifferentialRunner,
    Divergence,
    EngineConfig,
    default_configs,
    reference_rows,
    run_differential,
    shrink_failing_query,
)
from repro.experiments.harness import Measurement, run_query, run_suite
from repro.experiments.report import (
    geometric_mean,
    speedup_summary,
    format_measurements,
    format_records,
)

__all__ = [
    "DifferentialReport",
    "DifferentialRunner",
    "Divergence",
    "EngineConfig",
    "default_configs",
    "reference_rows",
    "run_differential",
    "shrink_failing_query",
    "Measurement",
    "run_query",
    "run_suite",
    "geometric_mean",
    "speedup_summary",
    "format_measurements",
    "format_records",
]
