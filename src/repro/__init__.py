"""Free Join: unifying worst-case optimal and traditional joins.

A from-scratch Python reproduction of the SIGMOD 2023 paper by Wang, Willsey
and Suciu.  The package provides:

* a column-oriented in-memory storage layer (:mod:`repro.storage`),
* a small SQL dialect and conjunctive-query layer (:mod:`repro.query`),
* a cost-based join-order optimizer (:mod:`repro.optimizer`),
* three join engines over the same storage: traditional binary hash join
  (:mod:`repro.binaryjoin`), worst-case optimal Generic Join
  (:mod:`repro.genericjoin`) and Free Join (:mod:`repro.core`),
* workload generators reproducing the paper's benchmarks
  (:mod:`repro.workloads`) and an experiment harness regenerating every
  figure of the evaluation (:mod:`repro.experiments`),
* a parallel execution subsystem (:mod:`repro.parallel`: work-stealing
  pools over shared-memory columns, deadlines/cancellation, fingerprint-
  keyed context caching) and an asyncio serving layer (:mod:`repro.serve`),
* a front-door query router with admission control (:mod:`repro.router`):
  ``engine="auto"`` picks the engine and worker count per query from
  statistics and observed runtimes, and an :class:`AdmissionGate` sheds
  load with fast typed rejections instead of slow timeouts,
* standing queries with incremental view maintenance (:mod:`repro.views`):
  ``db.subscribe(sql)`` seeds a materialized snapshot and folds each
  append's delta rows through the partial-aggregate plane, streaming group
  deltas to subscribers.

Per-query knobs (engine, timeout, parallelism, streaming batch shape)
travel in one :class:`ExecOptions` accepted as ``options=`` by every entry
point; the legacy loose keyword arguments still work but emit a
``DeprecationWarning``.

Quickstart::

    from repro import Database, Table

    db = Database()
    db.register(Table.from_columns("r", {"x": [1, 2, 3], "y": [10, 20, 30]}))
    db.register(Table.from_columns("s", {"y": [10, 10, 30], "z": [7, 8, 9]}))
    outcome = db.execute("SELECT COUNT(*) FROM r, s WHERE r.y = s.y")
    print(outcome.scalar())
"""

from repro.storage import Catalog, Column, Table, load_csv, save_csv
from repro.query import Atom, ConjunctiveQuery, Hypergraph, QueryBuilder, Subatom
from repro.optimizer import (
    AlwaysOneCardinalityEstimator,
    BinaryPlan,
    DefaultCardinalityEstimator,
    JoinOrderOptimizer,
    optimize_query,
)
from repro.core import (
    FreeJoinEngine,
    FreeJoinOptions,
    FreeJoinPlan,
    TrieStrategy,
    binary_to_free_join,
    factor_plan,
)
from repro.binaryjoin import BinaryJoinEngine
from repro.genericjoin import GenericJoinEngine
from repro.engine import (
    JoinResult,
    StreamingAggregateSink,
    StreamingResult,
    StreamingSink,
    collapse_grouped_batches,
)
from repro.engine.session import Database
from repro.engine.options import ExecOptions
from repro.engine.aggregates import AggregateSpec, aggregate_result, aggregate_spec
from repro.views import ChangeFeed, StandingQuery
from repro.errors import AdmissionRejected, DeadlineExceeded, QueryCancelled
from repro.parallel.cancellation import DeadlineToken
from repro.router import (
    AdmissionGate,
    FeedbackStore,
    QueryRouter,
    RoutingDecision,
    classify_sql,
)
from repro.serve import AsyncDatabase

__version__ = "1.0.0"

__all__ = [
    "Catalog",
    "Column",
    "Table",
    "load_csv",
    "save_csv",
    "Atom",
    "Subatom",
    "ConjunctiveQuery",
    "Hypergraph",
    "QueryBuilder",
    "AlwaysOneCardinalityEstimator",
    "DefaultCardinalityEstimator",
    "BinaryPlan",
    "JoinOrderOptimizer",
    "optimize_query",
    "FreeJoinEngine",
    "FreeJoinOptions",
    "FreeJoinPlan",
    "TrieStrategy",
    "binary_to_free_join",
    "factor_plan",
    "BinaryJoinEngine",
    "GenericJoinEngine",
    "Database",
    "ExecOptions",
    "StandingQuery",
    "ChangeFeed",
    "AsyncDatabase",
    "QueryRouter",
    "RoutingDecision",
    "FeedbackStore",
    "AdmissionGate",
    "AdmissionRejected",
    "classify_sql",
    "DeadlineToken",
    "DeadlineExceeded",
    "QueryCancelled",
    "JoinResult",
    "StreamingAggregateSink",
    "StreamingResult",
    "StreamingSink",
    "collapse_grouped_batches",
    "AggregateSpec",
    "aggregate_result",
    "aggregate_spec",
    "__version__",
]
