#!/usr/bin/env python3
"""Developer script: check JOB-like queries for agreement, size, and time."""

import sys
import time

from repro.engine.session import Database
from repro.workloads.job import generate_job_workload

scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.2
engines = sys.argv[2].split(",") if len(sys.argv) > 2 else ["freejoin", "binary", "generic"]
only = sys.argv[3].split(",") if len(sys.argv) > 3 else None

wl = generate_job_workload(scale=scale)
db = Database(wl.catalog)
for q in wl.queries:
    if only and q.name not in only:
        continue
    times, counts, vals = {}, {}, {}
    for engine in engines:
        t0 = time.perf_counter()
        try:
            out = db.execute(q.sql, engine=engine, name=q.name)
            wall = time.perf_counter() - t0
            times[engine] = round(out.report.total_seconds, 3)
            counts[engine] = out.join_result.count()
            vals[engine] = tuple(out.table.to_rows())
        except Exception as exc:  # noqa: BLE001 - report and keep going
            times[engine] = "ERR:" + repr(exc)[:90]
            counts[engine] = "ERR"
            vals[engine] = ("ERR",)
        print(f"  {q.name} {engine}: t={times[engine]} rows={counts[engine]}", flush=True)
    agree = len({vals[e] for e in engines}) == 1 and len({counts[e] for e in engines}) == 1
    print(q.name, "agree" if agree else "MISMATCH", flush=True)
    if not agree:
        for e in engines:
            print("   ", e, counts[e], str(vals[e])[:120], flush=True)
