#!/usr/bin/env python3
"""Regenerate every figure of the paper and write a single text report.

Usage::

    python scripts/make_report.py [output_path] [job_scale]

This is the long-form version of ``pytest benchmarks/ --benchmark-only``: it
runs each experiment driver at a configurable scale and concatenates the
rendered series into one report file (default ``reproduction_report.txt``).
"""

import sys
import time

from repro.experiments.figures import FIGURES, format_figure


def main() -> None:
    output_path = sys.argv[1] if len(sys.argv) > 1 else "reproduction_report.txt"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.15

    sections = []
    for name in sorted(FIGURES):
        driver = FIGURES[name]
        kwargs = {}
        if "scale" in driver.__code__.co_varnames:
            kwargs["scale"] = scale
        started = time.perf_counter()
        result = driver(**kwargs)
        elapsed = time.perf_counter() - started
        sections.append(format_figure(result))
        sections.append(f"(driver ran in {elapsed:.1f} s)\n")
        print(f"{name}: done in {elapsed:.1f} s", flush=True)

    with open(output_path, "w") as handle:
        handle.write("\n".join(sections))
    print(f"wrote {output_path}")


if __name__ == "__main__":
    main()
