#!/usr/bin/env python3
"""Regenerate every figure of the paper and write text + JSON reports.

Usage::

    python scripts/make_report.py [output_path] [job_scale]

This is the long-form version of ``pytest benchmarks/ --benchmark-only``: it
runs each experiment driver at a configurable scale and concatenates the
rendered series into one report file (default ``reproduction_report.txt``).

Alongside the text report it writes a machine-readable ``BENCH_<label>.json``
(same directory as the text report) holding every raw measurement record plus
per-driver wall times — the artifact CI uploads so benchmark numbers can be
compared across runs.

Environment:

* ``REPRO_BENCH_SMOKE=1`` — smoke mode: a tiny default scale and the label
  ``smoke`` (CI uses this; the artifact becomes ``BENCH_smoke.json``).
* ``REPRO_SEED=<int>`` — pins the workload generator seed so numbers are
  comparable across runs.
"""

import inspect
import json
import os
import platform
import sys
import time

from repro.experiments.figures import FIGURES, format_figure


def _jsonable(summary):
    """A figure's summary record, or None when it cannot be serialized."""
    try:
        json.dumps(summary)
    except (TypeError, ValueError):
        return None
    return summary


def _default_scale(smoke: bool) -> float:
    return 0.04 if smoke else 0.15


def run_figures(scale: float, seed, smoke: bool):
    """Run every figure driver; return (text sections, JSON records).

    ``seed`` is only forwarded when the caller pinned one explicitly
    (``REPRO_SEED``); otherwise each driver keeps its own established
    default (the JOB drivers use 42, the LSQB drivers 7), so full-mode
    reports stay comparable with previously published numbers.
    """
    sections = []
    figures = []
    for name in sorted(FIGURES):
        driver = FIGURES[name]
        parameters = inspect.signature(driver).parameters
        kwargs = {}
        if "scale" in parameters:
            kwargs["scale"] = scale
        if seed is not None and "seed" in parameters:
            kwargs["seed"] = seed
        if smoke and "scale_factors" in parameters:
            # The LSQB sweeps default to paper-scale factors (up to 3.0);
            # smoke mode caps them so the whole report finishes in minutes.
            kwargs["scale_factors"] = (0.05, 0.1)
        if smoke and "job_scale" in parameters:
            # The headline driver names its scales job_scale/lsqb_scale
            # instead of scale; cap both or it runs at full defaults.
            kwargs["job_scale"] = scale
        if smoke and "lsqb_scale" in parameters:
            kwargs["lsqb_scale"] = 0.1
        started = time.perf_counter()
        result = driver(**kwargs)
        elapsed = time.perf_counter() - started
        sections.append(format_figure(result))
        sections.append(f"(driver ran in {elapsed:.1f} s)\n")
        measurements = result.get("measurements", [])
        figures.append({
            "figure": name,
            "driver_seconds": elapsed,
            # The exact parameters this driver ran with — figures that take
            # job_scale/lsqb_scale/scale_factors differ from the top-level
            # scale, and comparisons across runs need to know that.
            "params": {k: list(v) if isinstance(v, tuple) else v
                       for k, v in kwargs.items()},
            "measurements": [m.as_record() for m in measurements],
            "summary": _jsonable(result.get("summary")),
        })
        print(f"{name}: done in {elapsed:.1f} s", flush=True)
    return sections, figures


def main() -> None:
    output_path = sys.argv[1] if len(sys.argv) > 1 else "reproduction_report.txt"
    smoke = os.environ.get("REPRO_BENCH_SMOKE") == "1"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else _default_scale(smoke)
    seed_env = os.environ.get("REPRO_SEED")
    seed = int(seed_env) if seed_env is not None else None
    label = "smoke" if smoke else "full"

    started = time.perf_counter()
    sections, figures = run_figures(scale, seed, smoke)
    total_seconds = time.perf_counter() - started

    with open(output_path, "w") as handle:
        handle.write("\n".join(sections))
    print(f"wrote {output_path}")

    json_path = os.path.join(
        os.path.dirname(os.path.abspath(output_path)), f"BENCH_{label}.json"
    )
    payload = {
        "label": label,
        "scale": scale,
        "seed": seed,
        "total_seconds": total_seconds,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "figures": figures,
    }
    with open(json_path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {json_path}")


if __name__ == "__main__":
    main()
