#!/usr/bin/env python3
"""Append a benchmark run to the rolling history, pruning to the last N.

Usage::

    python scripts/update_bench_history.py BENCH_smoke.json \
        [--history benchmarks/history] [--keep 10] [--out DIR]

The history is a directory of ``NNN-<label>.json`` files (sequence-numbered
so lexical order equals chronological order), each a full
``scripts/make_report.py`` artifact.  ``scripts/check_bench_regression.py
--history`` runs median-trend detection against it.

Maintenance model: CI *reads* the committed history and *uploads* the
updated directory as an artifact (runners cannot push); a developer
regenerating benchmarks runs this script in place and commits the result,
which both advances the trend window and retires the oldest run.  ``--out``
writes the updated history to a different directory (what CI does to build
its artifact) without touching the committed one.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import shutil
import sys

SEQUENCE_PATTERN = re.compile(r"^(\d+)-")


def _sequence_of(name: str) -> int:
    match = SEQUENCE_PATTERN.match(name)
    return int(match.group(1)) if match else 0


def history_files(directory: str) -> list:
    """History entries oldest first.

    Sorted by *numeric* sequence prefix (lexical order would put
    ``1000-...`` before ``999-...`` and prune the newest run instead of the
    oldest once the counter outgrows its zero padding).
    """
    if not os.path.isdir(directory):
        return []
    return sorted(
        (name for name in os.listdir(directory) if name.endswith(".json")),
        key=lambda name: (_sequence_of(name), name),
    )


def next_sequence(names: list) -> int:
    return max((_sequence_of(name) for name in names), default=0) + 1


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="fresh BENCH_<label>.json to append")
    parser.add_argument(
        "--history", default="benchmarks/history",
        help="committed history directory (default benchmarks/history)",
    )
    parser.add_argument(
        "--keep", type=int, default=10,
        help="number of runs to retain, oldest pruned first (default 10)",
    )
    parser.add_argument(
        "--out", default=None, metavar="DIR",
        help="write the updated history here instead of in place",
    )
    arguments = parser.parse_args()
    if arguments.keep < 1:
        raise SystemExit(f"--keep must be at least 1, got {arguments.keep}")

    with open(arguments.current) as handle:
        payload = json.load(handle)
    if not payload.get("figures"):
        raise SystemExit(f"{arguments.current}: no figures; not a report artifact")
    label = payload.get("label", "run")

    target = arguments.out or arguments.history
    existing = history_files(arguments.history)
    if arguments.out:
        os.makedirs(target, exist_ok=True)
        for name in existing:
            shutil.copy2(
                os.path.join(arguments.history, name), os.path.join(target, name)
            )
    else:
        os.makedirs(target, exist_ok=True)

    sequence = next_sequence(existing)
    entry = f"{sequence:03d}-{label}.json"
    shutil.copy2(arguments.current, os.path.join(target, entry))
    print(f"appended {entry} to {target}")

    names = history_files(target)
    while len(names) > arguments.keep:
        victim = names.pop(0)
        os.remove(os.path.join(target, victim))
        print(f"pruned {victim} (keeping last {arguments.keep})")
    print(f"history now holds {len(names)} run(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
