#!/usr/bin/env python3
"""Gate a benchmark run against a committed baseline.

Usage::

    python scripts/check_bench_regression.py BENCH_smoke.json \
        benchmarks/baseline_smoke.json [--tolerance 0.25] [--mode normalized]

Compares the per-figure ``driver_seconds`` of a fresh ``BENCH_<label>.json``
(produced by ``scripts/make_report.py``) against the committed baseline and
exits non-zero when any figure regressed by more than ``--tolerance``
(default 25%, the CI gate).

Two comparison modes:

* ``normalized`` (default): every figure's current/baseline ratio is divided
  by the **median** ratio across all figures.  The median ratio estimates
  the machine-speed difference between the two runs (a CI runner uniformly
  2x slower than the baseline machine has a median ratio of ~2 and passes
  cleanly), and — being a median — it barely moves when one figure genuinely
  improves or regresses, so a large speedup of one figure does not make the
  untouched figures look relatively slower (a zero-sum share comparison
  would).  A figure fails when it is more than ``--tolerance`` slower than
  the fleet's median drift.
* ``absolute``: raw seconds are compared.  Only meaningful when baseline and
  run come from identical hardware; useful for local before/after checks.

Figures present in only one of the two files are reported but never fail the
gate (adding a benchmark must not require regenerating history first).
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from typing import Dict


def load_figures(path: str) -> Dict[str, float]:
    with open(path) as handle:
        payload = json.load(handle)
    figures = {
        record["figure"]: float(record["driver_seconds"])
        for record in payload.get("figures", [])
    }
    if not figures:
        raise SystemExit(f"{path}: no figures with driver_seconds found")
    return figures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="fresh BENCH_<label>.json")
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument(
        "--tolerance", type=float, default=0.25,
        help="maximum allowed relative regression per figure (default 0.25)",
    )
    parser.add_argument(
        "--mode", choices=("normalized", "absolute"), default="normalized",
        help="compare suite-relative shares (default) or raw seconds",
    )
    arguments = parser.parse_args()

    current = load_figures(arguments.current)
    baseline = load_figures(arguments.baseline)
    shared = sorted(set(current) & set(baseline))
    ratios = {
        name: current[name] / baseline[name]
        for name in shared
        if baseline[name] > 0
    }
    if not ratios:
        raise SystemExit("no comparable figures between the two files")
    if arguments.mode == "normalized":
        # The fleet's median drift estimates the machine-speed difference.
        drift = statistics.median(ratios.values())
        if drift <= 0:
            raise SystemExit("median ratio is zero; nothing to compare")
        print(f"median speed drift vs baseline: {drift:.3f}x")
    else:
        drift = 1.0

    failures = []
    for name in shared:
        if name not in ratios:
            print(f"~ {name}: zero baseline (skipped)")
            continue
        relative = ratios[name] / drift
        change = relative - 1.0
        marker = "OK"
        if change > arguments.tolerance:
            marker = "FAIL"
            failures.append(name)
        print(
            f"{marker:4s} {name}: {baseline[name]:.4f} s -> {current[name]:.4f} s "
            f"({change:+.1%} vs median drift, tolerance +{arguments.tolerance:.0%})"
        )
    for name in sorted(set(baseline) - set(current)):
        print(f"~ {name}: missing from current run (skipped)")
    for name in sorted(set(current) - set(baseline)):
        print(f"~ {name}: new figure, no baseline (skipped)")

    if failures:
        print(
            f"\nbenchmark gate FAILED: {len(failures)} figure(s) regressed "
            f"more than {arguments.tolerance:.0%}: {', '.join(failures)}"
        )
        return 1
    print("\nbenchmark gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
