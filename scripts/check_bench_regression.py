#!/usr/bin/env python3
"""Gate a benchmark run against a committed baseline (and its history).

Usage::

    python scripts/check_bench_regression.py BENCH_smoke.json \
        benchmarks/baseline_smoke.json [--tolerance 0.25] [--mode normalized] \
        [--history benchmarks/history] [--trend-tolerance 0.25]

Compares the per-figure ``driver_seconds`` of a fresh ``BENCH_<label>.json``
(produced by ``scripts/make_report.py``) against the committed baseline and
exits non-zero when any figure regressed by more than ``--tolerance``
(default 25%, the CI gate).

With ``--history DIR`` the gate additionally runs **median-trend
detection** against the rolling run history (``benchmarks/history/*.json``,
maintained by ``scripts/update_bench_history.py``): for every history run,
each figure's ratio is normalized by that comparison's median drift (so the
trend is machine-speed independent, like the baseline mode below), and a
figure fails when the *median* of its normalized ratios across the whole
history exceeds ``1 + --trend-tolerance``.  This catches sustained drift —
a figure that got 8% slower in each of four consecutive PRs passes every
last-vs-baseline check, yet sits ~36% above the history median, and the
trend gate fails it.

Two comparison modes:

* ``normalized`` (default): every figure's current/baseline ratio is divided
  by the **median** ratio across all figures.  The median ratio estimates
  the machine-speed difference between the two runs (a CI runner uniformly
  2x slower than the baseline machine has a median ratio of ~2 and passes
  cleanly), and — being a median — it barely moves when one figure genuinely
  improves or regresses, so a large speedup of one figure does not make the
  untouched figures look relatively slower (a zero-sum share comparison
  would).  A figure fails when it is more than ``--tolerance`` slower than
  the fleet's median drift.
* ``absolute``: raw seconds are compared.  Only meaningful when baseline and
  run come from identical hardware; useful for local before/after checks.

Figures present in only one of the two files are reported but never fail the
gate (adding a benchmark must not require regenerating history first).

With ``--kernels-gate`` the script additionally runs the **bench-kernels**
gate: the ``kernels`` figure measures the headline workload twice in one
process — vectorized batch kernels vs ``REPRO_KERNELS=off`` — and the gate
fails unless the vectorized wall is at most ``--kernels-max-ratio`` (default
0.5, i.e. a >= 2x speedup) of the row-at-a-time wall.  Because both walls
come from the same run on the same machine, this gate needs no drift
normalization and cannot be absorbed by a fleet-wide speedup the way a
baseline comparison would be.  The same flag enforces two more checks on
the ``kernels`` figure:

* **factorized delivery** — the Fig. 19-style star delivered into a
  ``FactorizedSink`` must run at most ``--kernels-factorized-max-ratio``
  (default 0.6) of its own row-at-a-time wall (variants ``factorized`` vs
  ``factorized-row-path``);
* **fallback budget** — the figure's fallback sweep over the headline
  queries (plus a ``LEFT OUTER JOIN``) must report **zero** occurrences of
  every budgeted reason (``factorized-output``, ``left-outer-extension``):
  those paths are vectorized now, and a fallback reappearing means a
  regression to row-at-a-time execution that no timing gate would catch on
  small CI workloads.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import statistics
import sys
from typing import Dict, List, Tuple


def load_figures(path: str) -> Dict[str, float]:
    with open(path) as handle:
        payload = json.load(handle)
    figures = {
        record["figure"]: float(record["driver_seconds"])
        for record in payload.get("figures", [])
    }
    if not figures:
        raise SystemExit(f"{path}: no figures with driver_seconds found")
    return figures


#: Kernel fallback reasons that must never fire on the headline workloads.
FALLBACK_BUDGET_REASONS = ("factorized-output", "left-outer-extension")


def _wall_ratio_check(
    label: str,
    walls: Dict[str, float],
    fast: str,
    slow: str,
    max_ratio: float,
) -> List[str]:
    """Check ``walls[fast] <= max_ratio * walls[slow]``; print one line."""
    if not walls[fast] or not walls[slow]:
        return [
            f"figure lacks {fast}/{slow} measurements "
            f"({fast}={walls[fast]:.4f} s, {slow}={walls[slow]:.4f} s)"
        ]
    ratio = walls[fast] / walls[slow]
    marker = "OK" if ratio <= max_ratio else "FAIL"
    print(
        f"{marker:4s} {label}: {fast} {walls[fast]:.4f} s vs "
        f"{slow} {walls[slow]:.4f} s = {ratio:.3f}x "
        f"(gate <= {max_ratio:.2f}x, speedup {1.0 / ratio:.2f}x)"
    )
    if ratio > max_ratio:
        return [
            f"{fast} ran at {ratio:.3f}x the {slow} wall "
            f"(gate requires <= {max_ratio:.2f}x)"
        ]
    return []


def check_kernels_gate(
    path: str, figure: str, max_ratio: float, factorized_max_ratio: float
) -> List[str]:
    """The bench-kernels gate: vectorized walls, factorized walls, fallbacks.

    Reads the named figure's raw measurements from the current BENCH json
    (the ``kernels`` driver runs the headline workload once per variant in
    the same process) and fails unless
    ``sum(vectorized) <= max_ratio * sum(row-path)`` and
    ``sum(factorized) <= factorized_max_ratio * sum(factorized-row-path)``.
    The figure's summary must also report a zero count for every budgeted
    fallback reason.  Returns failure messages (empty when the gate
    passes); a missing or degenerate figure is itself a failure so the gate
    cannot silently rot out of CI.
    """
    with open(path) as handle:
        payload = json.load(handle)
    records = [f for f in payload.get("figures", []) if f.get("figure") == figure]
    if not records:
        return [f"figure {figure!r} missing from {path}"]
    walls = {
        "vectorized": 0.0,
        "row-path": 0.0,
        "factorized": 0.0,
        "factorized-row-path": 0.0,
    }
    for measurement in records[0].get("measurements", []):
        variant = measurement.get("variant")
        if variant in walls:
            walls[variant] += float(measurement.get("seconds", 0.0))
    failures = _wall_ratio_check(
        "kernels", walls, "vectorized", "row-path", max_ratio
    )
    failures += _wall_ratio_check(
        "kernels", walls, "factorized", "factorized-row-path",
        factorized_max_ratio,
    )
    summary = records[0].get("summary") or {}
    budget = (summary.get("fallbacks") or {}).get("budget")
    if not isinstance(budget, dict):
        failures.append(
            f"figure {figure!r} has no fallback-budget summary "
            "(rerun scripts/make_report.py to regenerate the BENCH json)"
        )
    else:
        for reason in FALLBACK_BUDGET_REASONS:
            count = int(budget.get(reason, 0))
            marker = "OK" if count == 0 else "FAIL"
            print(f"{marker:4s} kernels fallback budget: {reason} x{count}")
            if count:
                failures.append(
                    f"budgeted kernel fallback {reason!r} fired {count} "
                    "time(s) on the headline workloads (budget is zero)"
                )
    return failures


def check_ivm_gate(path: str, figure: str, max_ratio: float) -> List[str]:
    """The bench-ivm gate: delta folding must beat re-execution.

    Reads the named figure's raw measurements from the current BENCH json
    (the ``ivm`` driver maintains one standing query and one re-executed
    baseline over identical append bursts, asserting snapshot parity per
    burst) and fails unless
    ``sum(delta-fold) <= max_ratio * sum(reexecute)``.  The figure's
    summary must also confirm the standing query actually ran on the delta
    path — a silent fallback to re-execution would make the ratio ~1 and
    fail anyway, but the mode check reports *why*.  Returns failure
    messages (empty when the gate passes); a missing figure is itself a
    failure so the gate cannot silently rot out of CI.
    """
    with open(path) as handle:
        payload = json.load(handle)
    records = [f for f in payload.get("figures", []) if f.get("figure") == figure]
    if not records:
        return [f"figure {figure!r} missing from {path}"]
    walls = {"delta-fold": 0.0, "reexecute": 0.0}
    for measurement in records[0].get("measurements", []):
        variant = measurement.get("variant")
        if variant in walls:
            walls[variant] += float(measurement.get("seconds", 0.0))
    failures = _wall_ratio_check(
        "ivm", walls, "delta-fold", "reexecute", max_ratio
    )
    summary = records[0].get("summary") or {}
    mode = summary.get("mode")
    marker = "OK" if mode == "delta" else "FAIL"
    print(f"{marker:4s} ivm maintenance mode: {mode!r}")
    if mode != "delta":
        failures.append(
            f"the ivm figure's standing query ran in mode {mode!r}; the gate "
            "measures the delta-fold path"
        )
    return failures


def _history_sequence(path: str) -> Tuple[int, str]:
    """Numeric sequence prefix of a history file name (oldest-first sort)."""
    name = os.path.basename(path)
    head = name.split("-", 1)[0]
    return (int(head) if head.isdigit() else 0, name)


def load_history(directory: str) -> List[Tuple[str, Dict[str, float]]]:
    """Load every history run, oldest first (numeric sequence order).

    Order only affects the printed report — the trend statistic is a median
    over all runs — but numeric sorting keeps it chronological even after
    the sequence counter outgrows its zero padding.
    """
    runs = []
    for path in sorted(glob.glob(os.path.join(directory, "*.json")), key=_history_sequence):
        try:
            runs.append((os.path.basename(path), load_figures(path)))
        except (OSError, ValueError, SystemExit) as exc:
            print(f"~ history file {path} skipped: {exc}")
    return runs


def normalized_ratios(
    current: Dict[str, float], reference: Dict[str, float]
) -> Dict[str, float]:
    """Per-figure current/reference ratios divided by their median drift."""
    shared = sorted(set(current) & set(reference))
    ratios = {
        name: current[name] / reference[name]
        for name in shared
        if reference[name] > 0
    }
    if not ratios:
        return {}
    drift = statistics.median(ratios.values())
    if drift <= 0:
        return {}
    return {name: ratio / drift for name, ratio in ratios.items()}


def check_trend(
    current: Dict[str, float],
    history: List[Tuple[str, Dict[str, float]]],
    trend_tolerance: float,
) -> List[str]:
    """Median-trend detection: sustained drift across the run history.

    Returns the figures whose median normalized ratio across every history
    run exceeds ``1 + trend_tolerance``.  Using the median over runs keeps
    one noisy history entry from failing (or masking) a trend.
    """
    per_figure: Dict[str, List[float]] = {}
    for _name, reference in history:
        for figure, ratio in normalized_ratios(current, reference).items():
            per_figure.setdefault(figure, []).append(ratio)
    failures = []
    for figure in sorted(per_figure):
        ratios = per_figure[figure]
        median_ratio = statistics.median(ratios)
        change = median_ratio - 1.0
        marker = "OK"
        if change > trend_tolerance:
            marker = "FAIL"
            failures.append(figure)
        spread = f"{min(ratios):.3f}..{max(ratios):.3f}" if len(ratios) > 1 else "-"
        print(
            f"{marker:4s} trend {figure}: median {median_ratio:.3f}x vs "
            f"{len(ratios)} history run(s) (range {spread}, "
            f"tolerance +{trend_tolerance:.0%})"
        )
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="fresh BENCH_<label>.json")
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument(
        "--tolerance", type=float, default=0.25,
        help="maximum allowed relative regression per figure (default 0.25)",
    )
    parser.add_argument(
        "--mode", choices=("normalized", "absolute"), default="normalized",
        help="compare suite-relative shares (default) or raw seconds",
    )
    parser.add_argument(
        "--history", default=None, metavar="DIR",
        help="rolling history directory; enables median-trend detection",
    )
    parser.add_argument(
        "--trend-tolerance", type=float, default=0.25,
        help="maximum allowed median drift vs the history (default 0.25)",
    )
    parser.add_argument(
        "--kernels-gate", action="store_true",
        help="also run the bench-kernels gate on the current run's "
             "'kernels' figure (vectorized vs row-path walls)",
    )
    parser.add_argument(
        "--kernels-figure", default="kernels", metavar="NAME",
        help="figure holding the vectorized/row-path measurements "
             "(default 'kernels')",
    )
    parser.add_argument(
        "--kernels-max-ratio", type=float, default=0.5,
        help="maximum allowed vectorized/row-path wall ratio "
             "(default 0.5 = a 2x speedup floor)",
    )
    parser.add_argument(
        "--kernels-factorized-max-ratio", type=float, default=0.6,
        help="maximum allowed factorized/factorized-row-path wall ratio "
             "(default 0.6)",
    )
    parser.add_argument(
        "--ivm-gate", action="store_true",
        help="also run the bench-ivm gate on the current run's 'ivm' figure "
             "(standing-query delta folding vs re-execution walls)",
    )
    parser.add_argument(
        "--ivm-figure", default="ivm", metavar="NAME",
        help="figure holding the delta-fold/reexecute measurements "
             "(default 'ivm')",
    )
    parser.add_argument(
        "--ivm-max-ratio", type=float, default=0.3,
        help="maximum allowed delta-fold/reexecute wall ratio (default 0.3)",
    )
    arguments = parser.parse_args()

    current = load_figures(arguments.current)
    baseline = load_figures(arguments.baseline)
    shared = sorted(set(current) & set(baseline))
    ratios = {
        name: current[name] / baseline[name]
        for name in shared
        if baseline[name] > 0
    }
    if not ratios:
        raise SystemExit("no comparable figures between the two files")
    if arguments.mode == "normalized":
        # The fleet's median drift estimates the machine-speed difference.
        drift = statistics.median(ratios.values())
        if drift <= 0:
            raise SystemExit("median ratio is zero; nothing to compare")
        print(f"median speed drift vs baseline: {drift:.3f}x")
    else:
        drift = 1.0

    failures = []
    for name in shared:
        if name not in ratios:
            print(f"~ {name}: zero baseline (skipped)")
            continue
        relative = ratios[name] / drift
        change = relative - 1.0
        marker = "OK"
        if change > arguments.tolerance:
            marker = "FAIL"
            failures.append(name)
        print(
            f"{marker:4s} {name}: {baseline[name]:.4f} s -> {current[name]:.4f} s "
            f"({change:+.1%} vs median drift, tolerance +{arguments.tolerance:.0%})"
        )
    for name in sorted(set(baseline) - set(current)):
        print(f"~ {name}: missing from current run (skipped)")
    for name in sorted(set(current) - set(baseline)):
        print(f"~ {name}: new figure, no baseline (skipped)")

    kernel_failures: List[str] = []
    if arguments.kernels_gate:
        print("\nbench-kernels gate:")
        kernel_failures = check_kernels_gate(
            arguments.current,
            arguments.kernels_figure,
            arguments.kernels_max_ratio,
            arguments.kernels_factorized_max_ratio,
        )
    ivm_failures: List[str] = []
    if arguments.ivm_gate:
        print("\nbench-ivm gate:")
        ivm_failures = check_ivm_gate(
            arguments.current,
            arguments.ivm_figure,
            arguments.ivm_max_ratio,
        )

    trend_failures: List[str] = []
    if arguments.history:
        history = load_history(arguments.history)
        if history:
            print(f"\ntrend check against {len(history)} history run(s):")
            trend_failures = check_trend(
                current, history, arguments.trend_tolerance
            )
        else:
            print(f"\n~ no history runs under {arguments.history}; trend skipped")

    if failures or trend_failures or kernel_failures or ivm_failures:
        if failures:
            print(
                f"\nbenchmark gate FAILED: {len(failures)} figure(s) regressed "
                f"more than {arguments.tolerance:.0%}: {', '.join(failures)}"
            )
        if trend_failures:
            print(
                f"\nbenchmark trend gate FAILED: {len(trend_failures)} figure(s) "
                f"drifted more than {arguments.trend_tolerance:.0%} above the "
                f"history median: {', '.join(trend_failures)}"
            )
        if kernel_failures:
            print(
                "\nbench-kernels gate FAILED: " + "; ".join(kernel_failures)
            )
        if ivm_failures:
            print("\nbench-ivm gate FAILED: " + "; ".join(ivm_failures))
        return 1
    print("\nbenchmark gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
