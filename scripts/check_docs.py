#!/usr/bin/env python3
"""Lightweight link and anchor checker for the repo's markdown docs.

Usage::

    python scripts/check_docs.py [FILE.md ...]

With no arguments it checks the default doc set: ``README.md``, every
``docs/*.md`` and ``benchmarks/README.md``.  For each markdown file it
verifies that:

* every **relative link** (``[text](path)``, ``[text](path#anchor)``)
  resolves to an existing file or directory relative to the file, and
* every **anchor** (``#section`` in a relative link, or ``(#section)``
  within the same file) matches a heading in the target file, using
  GitHub's heading-slug rules (lowercase, punctuation stripped, spaces
  to hyphens, duplicate slugs suffixed ``-1``, ``-2``, ...).

External links (``http://``, ``https://``, ``mailto:``) are *not*
fetched — the checker is offline by design so it can gate markdown-only
pushes in CI without network flakiness.  Links inside fenced code blocks
and inline code spans are ignored.

Exits non-zero listing every broken link, so CI fails the build.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path
from typing import Dict, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

DEFAULT_DOCS = ("README.md", "docs", "benchmarks/README.md")

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
FENCE_RE = re.compile(r"^(```|~~~)")
CODE_SPAN_RE = re.compile(r"`[^`]*`")
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def github_slug(heading: str) -> str:
    """GitHub's heading-to-anchor slug: lowercase, drop punctuation, dash spaces."""
    text = CODE_SPAN_RE.sub(lambda m: m.group(0).strip("`"), heading)
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # linked headings keep text
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def collect_anchors(path: Path) -> List[str]:
    """All heading anchors of a markdown file, with GitHub duplicate suffixes."""
    seen: Dict[str, int] = {}
    anchors: List[str] = []
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = HEADING_RE.match(line)
        if not match:
            continue
        slug = github_slug(match.group(2))
        count = seen.get(slug, 0)
        seen[slug] = count + 1
        anchors.append(slug if count == 0 else f"{slug}-{count}")
    return anchors


def extract_links(path: Path) -> List[Tuple[int, str]]:
    """(line_number, target) for every markdown link outside code blocks/spans."""
    links: List[Tuple[int, str]] = []
    in_fence = False
    for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        if FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        stripped = CODE_SPAN_RE.sub("", line)
        for match in LINK_RE.finditer(stripped):
            links.append((lineno, match.group(1)))
    return links


def _display(path: Path) -> Path:
    try:
        return path.relative_to(REPO_ROOT)
    except ValueError:
        return path


def check_file(path: Path) -> List[str]:
    """Return human-readable error strings for every broken link in *path*."""
    errors: List[str] = []
    rel = _display(path)
    for lineno, target in extract_links(path):
        if target.startswith(EXTERNAL_PREFIXES):
            continue
        base, _, anchor = target.partition("#")
        if base:
            dest = (path.parent / base).resolve()
            if not dest.exists():
                errors.append(f"{rel}:{lineno}: broken link '{target}' (no such file)")
                continue
        else:
            dest = path  # pure '#anchor' link into the same file
        if anchor:
            if dest.is_dir() or dest.suffix.lower() != ".md":
                continue  # anchors into non-markdown targets are not checkable
            if anchor.lower() not in collect_anchors(dest):
                errors.append(
                    f"{rel}:{lineno}: broken anchor '{target}' "
                    f"(no heading '#{anchor}' in {_display(dest)})"
                )
    return errors


def default_docs() -> List[Path]:
    docs: List[Path] = []
    for entry in DEFAULT_DOCS:
        path = REPO_ROOT / entry
        if path.is_dir():
            docs.extend(sorted(path.glob("*.md")))
        elif path.exists():
            docs.append(path)
    return docs


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="*", type=Path, help="markdown files (default: doc set)")
    args = parser.parse_args()

    files = [path.resolve() for path in args.files] if args.files else default_docs()
    missing = [path for path in files if not path.exists()]
    for path in missing:
        print(f"error: no such file: {path}", file=sys.stderr)
    if missing:
        return 2

    errors: List[str] = []
    for path in files:
        errors.extend(check_file(path))
    for error in errors:
        print(error, file=sys.stderr)
    checked = ", ".join(str(_display(p)) for p in files)
    if errors:
        print(f"docs check FAILED: {len(errors)} broken link(s) across {checked}", file=sys.stderr)
        return 1
    print(f"docs check OK: {checked}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
