"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` keeps working on offline machines whose setuptools/pip
combination cannot build PEP 660 editable wheels (no ``wheel`` package).
"""

from setuptools import setup

setup()
